//! The mutable, deduplicating property-graph store.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::ids::{LabelId, NodeId};
use crate::schema::{EdgeKind, NodeKind};
use crate::sym::{Interner, Sym};
use crate::{GraphError, Result};

/// A single node: its kind, interned natural key, optional class label
/// and whether it was reported directly in an event ("first order") or
/// only discovered during enrichment ("secondary", 75 % of the paper's
/// graph). Resolve `key` to its text via [`GraphStore::key`].
///
/// The label and first-order flag are packed into one `u32` behind
/// [`NodeRecord::label`] / [`NodeRecord::first_order`]: a padded
/// `Option<LabelId>` plus a `bool` cost 6 bytes (and alignment padding)
/// per node, which at the paper's 2.1 M nodes is pure waste for two
/// bits and 16 label bits. The serde representation is unchanged (the
/// shadow [`NodeRecordRepr`] keeps the `{kind, key, label,
/// first_order}` wire shape), so snapshots are layout-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "NodeRecordRepr", into = "NodeRecordRepr")]
pub struct NodeRecord {
    /// Node kind per the Figure 2 schema.
    pub kind: NodeKind,
    /// Interned natural key — the IOC text (e.g. `"198.51.100.7"`).
    pub key: Sym,
    /// Bits 0..16: label value; bit 16: label present; bit 17: first
    /// order. Always mutate through the methods below.
    meta: u32,
}

const META_LABEL_MASK: u32 = 0xFFFF;
const META_HAS_LABEL: u32 = 1 << 16;
const META_FIRST_ORDER: u32 = 1 << 17;

impl NodeRecord {
    /// A fresh record: no label, not first-order.
    #[inline]
    pub fn new(kind: NodeKind, key: Sym) -> Self {
        Self { kind, key, meta: 0 }
    }

    /// APT label; only ever set on [`NodeKind::Event`] nodes.
    #[inline]
    pub fn label(&self) -> Option<LabelId> {
        (self.meta & META_HAS_LABEL != 0).then(|| LabelId((self.meta & META_LABEL_MASK) as u16))
    }

    /// True when the node appeared directly in some incident report.
    #[inline]
    pub fn first_order(&self) -> bool {
        self.meta & META_FIRST_ORDER != 0
    }

    #[inline]
    fn set_label(&mut self, label: LabelId) {
        self.meta = (self.meta & !(META_LABEL_MASK | META_HAS_LABEL))
            | u32::from(label.0)
            | META_HAS_LABEL;
    }

    #[inline]
    fn clear_label(&mut self) {
        self.meta &= !(META_LABEL_MASK | META_HAS_LABEL);
    }

    #[inline]
    fn mark_first_order(&mut self) {
        self.meta |= META_FIRST_ORDER;
    }
}

/// Serde wire shape of [`NodeRecord`] — the pre-packing field layout,
/// kept stable so snapshot formats don't depend on the in-memory
/// packing.
#[derive(Serialize, Deserialize)]
struct NodeRecordRepr {
    kind: NodeKind,
    key: Sym,
    label: Option<LabelId>,
    first_order: bool,
}

impl From<NodeRecordRepr> for NodeRecord {
    fn from(r: NodeRecordRepr) -> Self {
        let mut rec = NodeRecord::new(r.kind, r.key);
        if let Some(l) = r.label {
            rec.set_label(l);
        }
        if r.first_order {
            rec.mark_first_order();
        }
        rec
    }
}

impl From<NodeRecord> for NodeRecordRepr {
    fn from(rec: NodeRecord) -> Self {
        Self { kind: rec.kind, key: rec.key, label: rec.label(), first_order: rec.first_order() }
    }
}

/// A directed, typed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Relation type per Table I.
    pub kind: EdgeKind,
}

/// Mutable TKG store with key-deduplication and Table I schema checks.
///
/// Parallel edges of the same kind are rejected (idempotent insert), so
/// repeated enrichment of overlapping reports converges — the property
/// the paper relies on when merging 4,512 event subgraphs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphStore {
    nodes: Vec<NodeRecord>,
    edges: Vec<Edge>,
    /// Key-text storage. Serialized as its string table only; the probe
    /// buckets are rebuilt by [`Self::rebuild_indices`].
    syms: Interner,
    #[serde(skip)]
    key_index: HashMap<(NodeKind, Sym), NodeId>,
    #[serde(skip)]
    edge_set: HashSet<(u32, u32, u8)>,
    out: Vec<Vec<(NodeId, EdgeKind)>>,
    inn: Vec<Vec<(NodeId, EdgeKind)>>,
}

impl GraphStore {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with node capacity reserved.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            syms: Interner::with_capacity(nodes),
            key_index: HashMap::with_capacity(nodes),
            edge_set: HashSet::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (directed, deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Insert the node if its `(kind, key)` is new, otherwise return the
    /// existing id. Never downgrades `first_order` (see [`Self::mark_first_order`]).
    pub fn upsert_node(&mut self, kind: NodeKind, key: &str) -> NodeId {
        self.upsert_node_full(kind, key).0
    }

    /// Like [`Self::upsert_node`], also reporting whether the node is
    /// new. The key text is interned at most once and the `Copy` symbol
    /// shared between the node record and the dedup index; lookups of
    /// known keys never allocate.
    pub fn upsert_node_full(&mut self, kind: NodeKind, key: &str) -> (NodeId, bool) {
        let sym = self.syms.intern(key);
        if let Some(&id) = self.key_index.get(&(kind, sym)) {
            return (id, false);
        }
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(NodeRecord::new(kind, sym));
        self.key_index.insert((kind, sym), id);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        (id, true)
    }

    /// Look up a node id by kind and key text. Allocation-free: the key
    /// is probed through the interner as a borrow.
    pub fn find_node(&self, kind: NodeKind, key: &str) -> Option<NodeId> {
        let sym = self.syms.lookup(key)?;
        self.key_index.get(&(kind, sym)).copied()
    }

    /// Borrow a node record.
    pub fn node(&self, id: NodeId) -> &NodeRecord {
        &self.nodes[id.index()]
    }

    /// The key text of a node.
    #[inline]
    pub fn key(&self, id: NodeId) -> &str {
        self.syms.resolve(self.nodes[id.index()].key)
    }

    /// The text of an interned key symbol.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        self.syms.resolve(sym)
    }

    /// Set the APT label of an event node.
    pub fn set_label(&mut self, id: NodeId, label: LabelId) -> Result<()> {
        let rec = self.nodes.get_mut(id.index()).ok_or(GraphError::UnknownNode(id))?;
        rec.set_label(label);
        Ok(())
    }

    /// Clear a node's label (used when masking folds).
    pub fn clear_label(&mut self, id: NodeId) {
        if let Some(rec) = self.nodes.get_mut(id.index()) {
            rec.clear_label();
        }
    }

    /// Mark a node as first-order (directly reported in an event).
    pub fn mark_first_order(&mut self, id: NodeId) {
        if let Some(rec) = self.nodes.get_mut(id.index()) {
            rec.mark_first_order();
        }
    }

    /// Add a typed edge; returns `Ok(false)` when the identical edge
    /// already exists. Rejects pairs Table I forbids.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) -> Result<bool> {
        let (sk, dk) = (
            self.nodes.get(src.index()).ok_or(GraphError::UnknownNode(src))?.kind,
            self.nodes.get(dst.index()).ok_or(GraphError::UnknownNode(dst))?.kind,
        );
        if !kind.allows(sk, dk) {
            return Err(GraphError::SchemaViolation { edge: kind, src: sk, dst: dk });
        }
        if !self.edge_set.insert((src.0, dst.0, kind.index() as u8)) {
            return Ok(false);
        }
        self.edges.push(Edge { src, dst, kind });
        self.out[src.index()].push((dst, kind));
        self.inn[dst.index()].push((src, kind));
        Ok(true)
    }

    /// Out-neighbours of a node with edge kinds.
    pub fn out_neighbors(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.out[id.index()]
    }

    /// In-neighbours of a node with edge kinds.
    pub fn in_neighbors(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.inn[id.index()]
    }

    /// Undirected degree (in + out).
    pub fn degree(&self, id: NodeId) -> usize {
        self.out[id.index()].len() + self.inn[id.index()].len()
    }

    /// All node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == kind)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    /// Count of nodes per kind, indexed by [`NodeKind::index`].
    pub fn node_counts_by_kind(&self) -> [usize; 5] {
        let mut counts = [0; 5];
        for n in &self.nodes {
            counts[n.kind.index()] += 1;
        }
        counts
    }

    /// Count of edge endpoints touching each node kind (the per-kind
    /// "Edges" column of Table II counts an edge once per endpoint kind).
    pub fn edge_endpoint_counts_by_kind(&self) -> [usize; 5] {
        let mut counts = [0; 5];
        for e in &self.edges {
            counts[self.nodes[e.src.index()].kind.index()] += 1;
            counts[self.nodes[e.dst.index()].kind.index()] += 1;
        }
        counts
    }

    /// Count of edges per edge kind.
    pub fn edge_counts_by_kind(&self) -> [usize; 6] {
        let mut counts = [0; 6];
        for e in &self.edges {
            counts[e.kind.index()] += 1;
        }
        counts
    }

    /// Iterate all edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterate all node records with ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &NodeRecord)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId::from(i), n))
    }

    /// Induced subgraph over `keep`. Returns the new graph and, for each
    /// old node id, its new id (or `None` if dropped). Used for the
    /// paper's first-order-only analysis (Section V).
    pub fn subgraph(&self, keep: impl Fn(NodeId, &NodeRecord) -> bool) -> (Self, Vec<Option<NodeId>>) {
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut sub = GraphStore::new();
        for (id, rec) in self.iter_nodes() {
            if keep(id, rec) {
                let new_id = sub.upsert_node(rec.kind, self.syms.resolve(rec.key));
                if let Some(l) = rec.label() {
                    sub.set_label(new_id, l).expect("fresh node");
                }
                if rec.first_order() {
                    sub.mark_first_order(new_id);
                }
                mapping[id.index()] = Some(new_id);
            }
        }
        for e in &self.edges {
            if let (Some(s), Some(d)) = (mapping[e.src.index()], mapping[e.dst.index()]) {
                sub.add_edge(s, d, e.kind).expect("kinds preserved");
            }
        }
        (sub, mapping)
    }

    /// Rebuild the lookup indices after deserialisation (they are skipped
    /// in the snapshot to halve its size).
    pub fn rebuild_indices(&mut self) {
        self.syms.rebuild();
        self.key_index = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| ((n.kind, n.key), NodeId::from(i)))
            .collect();
        self.edge_set =
            self.edges.iter().map(|e| (e.src.0, e.dst.0, e.kind.index() as u8)).collect();
        self.out = vec![Vec::new(); self.nodes.len()];
        self.inn = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            self.out[e.src.index()].push((e.dst, e.kind));
            self.inn[e.dst.index()].push((e.src, e.kind));
        }
    }
}

pub use crate::ids::LabelId as Label;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (GraphStore, NodeId, NodeId, NodeId) {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "evt-1");
        let ip = g.upsert_node(NodeKind::Ip, "198.51.100.7");
        let d = g.upsert_node(NodeKind::Domain, "evil.example");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        (g, e, ip, d)
    }

    #[test]
    fn upsert_is_idempotent() {
        let mut g = GraphStore::new();
        let a = g.upsert_node(NodeKind::Ip, "198.51.100.7");
        let b = g.upsert_node(NodeKind::Ip, "198.51.100.7");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        // Same key under a different kind is a different node sharing
        // one interned symbol.
        let c = g.upsert_node(NodeKind::Domain, "198.51.100.7");
        assert_ne!(a, c);
        assert_eq!(g.node(a).key, g.node(c).key);
        assert_eq!(g.key(a), "198.51.100.7");
        assert_eq!(g.key(c), "198.51.100.7");
    }

    #[test]
    fn upsert_full_reports_novelty() {
        let mut g = GraphStore::new();
        let (a, new_a) = g.upsert_node_full(NodeKind::Ip, "198.51.100.7");
        assert!(new_a);
        let (b, new_b) = g.upsert_node_full(NodeKind::Ip, "198.51.100.7");
        assert!(!new_b);
        assert_eq!(a, b);
        assert!(g.upsert_node_full(NodeKind::Domain, "198.51.100.7").1);
    }

    #[test]
    fn duplicate_edge_rejected_quietly() {
        let (mut g, e, ip, _) = tiny();
        assert!(!g.add_edge(e, ip, EdgeKind::InReport).unwrap());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn schema_violation_is_an_error() {
        let (mut g, e, ip, _) = tiny();
        // IP -> Event is never allowed.
        let err = g.add_edge(ip, e, EdgeKind::InReport).unwrap_err();
        assert!(matches!(err, GraphError::SchemaViolation { .. }));
    }

    #[test]
    fn neighbors_and_degree() {
        let (g, e, ip, d) = tiny();
        assert_eq!(g.out_neighbors(e).len(), 2);
        assert_eq!(g.in_neighbors(d).len(), 2);
        assert_eq!(g.degree(ip), 2);
    }

    #[test]
    fn labels_and_first_order() {
        let (mut g, e, ip, _) = tiny();
        g.set_label(e, LabelId(3)).unwrap();
        g.mark_first_order(ip);
        assert_eq!(g.node(e).label(), Some(LabelId(3)));
        assert!(g.node(ip).first_order());
        g.clear_label(e);
        assert_eq!(g.node(e).label(), None);
        // first_order survives label churn (independent meta bits).
        g.mark_first_order(e);
        g.set_label(e, LabelId(0xFFFF)).unwrap();
        assert_eq!(g.node(e).label(), Some(LabelId(0xFFFF)));
        assert!(g.node(e).first_order());
        g.clear_label(e);
        assert!(g.node(e).first_order());
    }

    #[test]
    fn node_record_wire_repr_round_trips_without_the_packed_field() {
        // Snapshots travel through `NodeRecordRepr` (the serde
        // from/into shadow), which keeps the unpacked
        // `{kind, key, label, first_order}` shape. The conversion pair
        // must be a lossless round trip so the packed `meta` layout
        // never leaks into the wire format.
        let (mut g, e, ip, _) = tiny();
        g.set_label(e, LabelId(7)).unwrap();
        g.mark_first_order(ip);

        let repr = NodeRecordRepr::from(*g.node(e));
        assert_eq!(repr.label, Some(LabelId(7)));
        assert!(!repr.first_order);
        let back = NodeRecord::from(repr);
        assert_eq!(&back, g.node(e));

        let repr_ip = NodeRecordRepr::from(*g.node(ip));
        assert_eq!(repr_ip.label, None);
        assert!(repr_ip.first_order);
        let back_ip = NodeRecord::from(repr_ip);
        assert_eq!(&back_ip, g.node(ip));
        assert!(back_ip.first_order());
        assert_eq!(back_ip.label(), None);

        // Full label-domain round trip, including the max label value.
        for label in [None, Some(LabelId(0)), Some(LabelId(0xFFFF))] {
            for first in [false, true] {
                let mut rec = NodeRecord::new(NodeKind::Event, g.node(e).key);
                if let Some(l) = label {
                    rec.set_label(l);
                }
                if first {
                    rec.mark_first_order();
                }
                assert_eq!(NodeRecord::from(NodeRecordRepr::from(rec)), rec);
            }
        }
    }

    #[test]
    fn subgraph_drops_edges_to_removed_nodes() {
        let (g, _, ip, d) = tiny();
        let (sub, mapping) = g.subgraph(|_, n| n.kind != NodeKind::Event);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1); // only ip -> domain survives
        let new_ip = mapping[ip.index()].unwrap();
        let new_d = mapping[d.index()].unwrap();
        assert_eq!(sub.out_neighbors(new_ip), &[(new_d, EdgeKind::ARecord)]);
    }

    #[test]
    fn counts_by_kind() {
        let (g, ..) = tiny();
        let nodes = g.node_counts_by_kind();
        assert_eq!(nodes[NodeKind::Event.index()], 1);
        assert_eq!(nodes[NodeKind::Ip.index()], 1);
        assert_eq!(nodes[NodeKind::Domain.index()], 1);
        let edges = g.edge_counts_by_kind();
        assert_eq!(edges[EdgeKind::InReport.index()], 2);
        assert_eq!(edges[EdgeKind::ARecord.index()], 1);
    }

    #[test]
    fn rebuild_indices_restores_lookup() {
        let (mut g, _, ip, _) = tiny();
        g.rebuild_indices();
        assert_eq!(g.find_node(NodeKind::Ip, "198.51.100.7"), Some(ip));
        // Dedup still works post-rebuild.
        let before = g.edge_count();
        let e = g.find_node(NodeKind::Event, "evt-1").unwrap();
        assert!(!g.add_edge(e, ip, EdgeKind::InReport).unwrap());
        assert_eq!(g.edge_count(), before);
    }
}
