//! Offline stand-in for `rand_distr`: just the `Distribution` trait and
//! the `LogNormal` sampler the synthetic world generator uses.

use rand::{RngCore, StandardSample};

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z ~ N(0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid log-normal parameters")
    }
}
impl std::error::Error for Error {}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(Self { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; one uniform pair per standard-normal draw.
        let mut u1 = f64::sample_standard(rng);
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = f64::sample_standard(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn lognormal_median_near_exp_mu() {
        let d = LogNormal::new(0.0, 0.55).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..4001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[2000];
        assert!((median - 1.0).abs() < 0.1, "median {median}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
