//! Shard-parallel TKG construction.
//!
//! The sequential build walks every collected event in canonical
//! `(created_day, id)` order and, per event, issues the two-hop
//! analysis queries inline. At paper scale the queries dominate the
//! wall clock, and they are *pure*: every outcome — analysis content,
//! permanent gaps, the transient-fault schedule, retry costs — is a
//! deterministic function of the canonical key and the attempt number,
//! never of graph state (see the `enrich` module docs).
//!
//! That purity is the whole parallelisation strategy:
//!
//! 1. **Phase A (parallel).** Events are assigned to shards by an
//!    FNV-1a hash of their report id. Each shard worker replays *its
//!    own* events against a scratch TKG in recording mode, memoising
//!    one [`QueryRecord`](crate::enrich) per canonical key it queries.
//!    The scratch graph is discarded; only the per-shard query map
//!    survives.
//! 2. **Phase B (sequential merge).** A fresh TKG ingests *all* events
//!    in the original canonical order, serving every analysis from the
//!    owning shard's map through the same apply code the sequential
//!    path runs. No query map iteration order is ever observed — maps
//!    are only probed by key — so thread scheduling cannot leak into
//!    the result.
//!
//! **Coverage argument** (why replay never needs a live query): a
//! shard worker queries every first-order IOC of its events, plus every
//! secondary IOC that is *new to its scratch graph*. The scratch graph
//! holds a subset of the merge-time graph's history, so any IOC that is
//! new at merge time was also new in the scratch walk — the shard map
//! is a superset of what the merge needs. A map miss would still be
//! harmless (the replay mode falls back to an identical live query),
//! it just cannot happen.
//!
//! **Equivalence argument** (why the result is bitwise-identical to
//! the sequential build, at any shard count and thread count): the
//! merge executes the same mutations as the sequential path, in the
//! same order, driven by the same per-key query results; and per-event
//! [`IngestStats`] are sums of per-query costs, which replay charges
//! identically. The only observable difference is plumbing telemetry
//! (`osint.queries` counts drop because shard workers deduplicate
//! repeat keys).
//!
//! The shard path refuses order-dependent enrichment: a circuit
//! breaker or fault budget makes query outcomes depend on the global
//! query *sequence*, so [`build_tkg_sharded`] callers must fall back to
//! the sequential walk (see `TrailSystem::build_with_shards`).

use trail_ioc::vocab::fnv1a;
use trail_osint::OsintClient;

use crate::collector::{AptRegistry, CollectedEvent};
use crate::enrich::{Enricher, IngestStats, QueryLog, QueryMap};
use crate::tkg::Tkg;

/// Shard owning a report id: FNV-1a over the id, mod the shard count.
pub fn shard_of(report_id: &str, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    (fnv1a(report_id) % n_shards as u64) as usize
}

/// Phase A: compute each shard's query map on the shared worker pool.
fn shard_query_maps(
    client: &OsintClient,
    until_day: u32,
    events: &[CollectedEvent],
    n_shards: usize,
    threads: usize,
) -> Vec<QueryMap> {
    let _span = trail_obs::span("shard.query_phase");
    let n_apts = client.world().config.n_apts;
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for (i, e) in events.iter().enumerate() {
        shards[shard_of(&e.report.id, n_shards)].push(i);
    }
    trail_linalg::pool::parallel_map_limit(threads.max(1), n_shards, |s| {
        let mut map = QueryMap::default();
        let mut scratch = Tkg::new(AptRegistry::new(n_apts));
        let enricher = Enricher::new(client, until_day);
        let mut log = QueryLog::Record(&mut map);
        for &i in &shards[s] {
            enricher.ingest_logged(&mut scratch, &events[i], &mut log);
        }
        drop(log);
        map
    })
}

/// Build a TKG from `events` with shard-parallel enrichment: Phase A
/// computes per-shard query maps in parallel, Phase B merges every
/// event sequentially in the given (canonical) order, replaying the
/// memoised queries. Bitwise-identical to ingesting the same events
/// sequentially with [`Enricher::ingest`] — at any `n_shards >= 1` and
/// any `threads >= 1`.
///
/// Callers must not pass a breaker-guarded client (order-dependent;
/// see the module docs). The enrichers used here never carry a budget.
pub(crate) fn build_tkg_sharded(
    client: &OsintClient,
    until_day: u32,
    events: &[CollectedEvent],
    n_shards: usize,
    threads: usize,
) -> (Tkg, IngestStats) {
    let n_shards = n_shards.max(1);
    let maps = shard_query_maps(client, until_day, events, n_shards, threads);
    let _span = trail_obs::span("shard.merge_phase");
    let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
    let mut stats = IngestStats::default();
    let enricher = Enricher::new(client, until_day);
    for event in events {
        let mut log = QueryLog::Replay(&maps[shard_of(&event.report.id, n_shards)]);
        stats.absorb(&enricher.ingest_logged(&mut tkg, event, &mut log));
    }
    (tkg, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::collect_iter;
    use std::sync::Arc;
    use trail_osint::{World, WorldConfig};

    fn setup(fault_prob: f32) -> (OsintClient, Vec<CollectedEvent>) {
        let mut cfg = WorldConfig::tiny(47);
        cfg.transient_fault_prob = fault_prob;
        let client = OsintClient::new(Arc::new(World::generate(cfg)));
        let registry = AptRegistry::new(client.world().config.n_apts);
        let (events, _) =
            collect_iter(client.reports_before(client.world().config.cutoff_day), &registry);
        (client, events)
    }

    fn sequential(client: &OsintClient, events: &[CollectedEvent], day: u32) -> (Tkg, IngestStats) {
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(client, day);
        let mut stats = IngestStats::default();
        for e in events {
            stats.absorb(&enricher.ingest(&mut tkg, e));
        }
        (tkg, stats)
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8, 13] {
            for id in ["r-0", "r-1", "some-longer-report-id", ""] {
                let s = shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, shard_of(id, n), "unstable shard for {id:?}");
            }
        }
    }

    #[test]
    fn sharded_build_is_bitwise_identical_to_sequential() {
        let (client, events) = setup(0.2);
        let day = client.world().config.cutoff_day;
        let (seq_tkg, seq_stats) = sequential(&client, &events, day);
        let seq_bytes = trail_graph::persist::to_bytes(&seq_tkg.graph);
        for (n_shards, threads) in [(1, 1), (2, 2), (5, 2), (8, 8)] {
            let (tkg, stats) = build_tkg_sharded(&client, day, &events, n_shards, threads);
            assert_eq!(stats, seq_stats, "stats diverged at {n_shards} shards");
            assert_eq!(
                trail_graph::persist::to_bytes(&tkg.graph),
                seq_bytes,
                "graph snapshot diverged at {n_shards} shards / {threads} threads"
            );
            assert_eq!(tkg.events.len(), seq_tkg.events.len());
        }
    }

    #[test]
    fn sharded_features_match_sequential() {
        let (client, events) = setup(0.0);
        let day = client.world().config.cutoff_day;
        let (seq_tkg, _) = sequential(&client, &events, day);
        let (tkg, _) = build_tkg_sharded(&client, day, &events, 4, 2);
        for kind in [trail_ioc::IocKind::Url, trail_ioc::IocKind::Ip, trail_ioc::IocKind::Domain] {
            let a = seq_tkg.featured_nodes(kind);
            let b = tkg.featured_nodes(kind);
            assert_eq!(a.len(), b.len(), "featured count diverged for {kind:?}");
            for ((na, fa), (nb, fb)) in a.iter().zip(&b) {
                assert_eq!(na, nb);
                assert_eq!(fa.fingerprint(), fb.fingerprint(), "features diverged at {na:?}");
            }
        }
    }
}
