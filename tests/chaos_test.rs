//! Deterministic chaos drills over the fault-tolerance runtime.
//!
//! Each test derives its faults from a fixed [`ChaosPlan`] seed, so
//! failures replay exactly (`repro --chaos SEED` runs the same drill at
//! benchmark scale). Three seeds cover the plan space:
//!
//! * seed 1 — survivable feed (55% transient faults), kills at windows
//!   0 and 2: the kill-and-resume equivalence drill.
//! * seed 4 — fully dead feed: the degradation-invariant drill.
//! * seed 6 — survivable feed, late kill points: plan shape checks and
//!   the snapshot-corruption drill share it with the other two.
//!
//! The invariants asserted here are the chaos harness's acceptance
//! criteria: a dead feed degrades the TKG but never wedges or corrupts
//! the pipeline; crash-resume is bitwise-exact; damaged snapshots are
//! rejected, never loaded.

use std::sync::{Arc, Mutex, MutexGuard};

use trail::attribute::GnnEvalConfig;
use trail::checkpoint::StudyCheckpoint;
use trail::enrich::IngestStats;
use trail::longitudinal::{run_resumable_study, MonthResult, StudyConfig};
use trail::system::TrailSystem;
use trail_gnn::{FineTune, LabelPropagation, SageConfig, TrainConfig};
use trail_linalg::Matrix;
use trail_ml::metrics::ConfusionMatrix;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{ChaosPlan, CircuitBreaker, OsintClient, World, WorldConfig};

/// Serialize tests that touch the process-global `trail_obs` registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    trail_obs::set_enabled(true);
    trail_obs::reset();
    g
}

/// A breaker-armed client over a tiny world perturbed by `plan`.
fn chaos_client(plan: &ChaosPlan, world_seed: u64) -> OsintClient {
    let mut cfg = WorldConfig::tiny(world_seed);
    plan.apply(&mut cfg);
    let mut client = OsintClient::new(Arc::new(World::generate(cfg)));
    client.set_breaker(Arc::new(CircuitBreaker::default()));
    client
}

/// Study configuration small enough for an integration test while
/// still exercising every resumable stage (autoencoder, both SAGE
/// models, monthly fine-tunes). Three months so the plan's latest
/// kill window (2) is a real mid-study crash.
fn tiny_study() -> StudyConfig {
    StudyConfig {
        months: 3,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 12,
            train: TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
        fine_tune: FineTune { lr: 0.01, epochs: 3 },
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("trail-chaos-test-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn chaos_plans_are_deterministic_and_well_formed() {
    for seed in 0..32 {
        let plan = ChaosPlan::from_seed(seed);
        assert_eq!(plan, ChaosPlan::from_seed(seed), "plan for seed {seed} is not a pure function");
        assert!(!plan.kill_windows.is_empty());
        assert!(
            plan.kill_windows.windows(2).all(|w| w[0] < w[1]),
            "kill windows not strictly increasing for seed {seed}: {:?}",
            plan.kill_windows
        );
        assert_eq!(plan.corrupt_offsets.len(), 4);
        assert!((0.30..=1.0).contains(&plan.transient_fault_prob));
        assert!((0.05..=0.25).contains(&plan.analysis_miss_prob));
        if plan.feed_dead {
            assert_eq!(plan.transient_fault_prob, 1.0, "a dead feed faults every attempt");
        }
    }
    // The specific plans the drills below rely on.
    assert!(ChaosPlan::from_seed(4).feed_dead);
    assert!(!ChaosPlan::from_seed(1).feed_dead);
    assert_eq!(ChaosPlan::from_seed(1).kill_windows, vec![0, 2]);
}

/// Degradation invariant (chaos seed 4): with a fully dead feed the
/// pipeline still completes, attribution runs on the partial TKG, and
/// the obs counters reconcile exactly with the ingest taxonomy —
/// `faults == retried + missed_transient + breaker_rejected`.
#[test]
fn dead_feed_degrades_without_wedging() {
    let _g = obs_lock();
    let plan = ChaosPlan::from_seed(4);
    assert!(plan.feed_dead);
    let client = chaos_client(&plan, 123);
    let cutoff = client.world().config.cutoff_day;
    let sys = TrailSystem::build(client, cutoff);
    let stats = &sys.ingest_stats;
    let snap = trail_obs::snapshot();

    // The pipeline completed: every report became an event node even
    // though no enrichment ever answered.
    assert!(!sys.tkg.events.is_empty(), "dead feed prevented ingestion");
    assert_eq!(stats.linked, 0, "a dead feed linked an indicator: {stats:?}");
    assert_eq!(stats.missed_permanent, 0, "rejections/faults misfiled as permanent: {stats:?}");
    assert!(stats.breaker_rejected > 0, "breaker never opened on a dead feed: {stats:?}");

    // Exact reconciliation between the metrics registry and the
    // pipeline's own accounting.
    assert_eq!(
        snap.counter("osint.faults"),
        (stats.retried + stats.missed_transient + stats.breaker_rejected) as u64,
        "fault counter disagrees with the taxonomy: {stats:?}"
    );
    assert_eq!(snap.counter("osint.breaker.rejected"), stats.breaker_rejected as u64);
    assert!(snap.counter("osint.breaker.opened") >= 1);

    // Every analysis ended transient-or-rejected, so degradation is
    // exactly total.
    assert!((sys.degradation() - 1.0).abs() < 1e-12, "degradation {}", sys.degradation());

    // Attribution still proceeds over the partial graph.
    let csr = sys.tkg.csr();
    let lp = LabelPropagation::new(&csr, sys.tkg.n_classes());
    let mut seeds = vec![None; sys.tkg.graph.node_count()];
    for e in &sys.tkg.events {
        seeds[e.node.index()] = Some(e.apt);
    }
    let scores = lp.propagate(&seeds, 2);
    assert_eq!(scores.len(), sys.tkg.graph.node_count() * sys.tkg.n_classes());
}

/// Kill-and-resume equivalence (chaos seed 1): killing the study at
/// every window boundary the plan names and resuming from the
/// checkpoint yields a `StudyOutput` bitwise-identical to the
/// uninterrupted run — under a breaker-armed, 55%-faulty feed.
#[test]
fn kill_and_resume_under_chaos_is_bitwise_identical() {
    let plan = ChaosPlan::from_seed(1);
    let cfg = tiny_study();
    let seed = 77;
    let cutoff = chaos_client(&plan, 123).world().config.cutoff_day;

    let dir_full = temp_dir("full");
    let full = run_resumable_study(chaos_client(&plan, 123), cutoff, &cfg, seed, &dir_full, None)
        .expect("uninterrupted run")
        .expect("ran to completion");

    let dir_killed = temp_dir("killed");
    for &k in &plan.kill_windows {
        let run = run_resumable_study(
            chaos_client(&plan, 123),
            cutoff,
            &cfg,
            seed,
            &dir_killed,
            Some(k),
        )
        .expect("killed run");
        assert!(run.is_none(), "kill point {k} not taken");
    }
    let resumed = run_resumable_study(chaos_client(&plan, 123), cutoff, &cfg, seed, &dir_killed, None)
        .expect("resumed run")
        .expect("ran to completion");

    assert_eq!(resumed, full, "resumed study diverged from the uninterrupted run");
    for d in [dir_full, dir_killed] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Snapshot-corruption drill: for every chaos seed's corruption
/// offsets, a single flipped byte — and any truncation — makes the
/// checkpoint loader return `Err`, never a panic or a silently wrong
/// study state.
#[test]
fn corruption_drill_rejects_every_damaged_snapshot() {
    let m = |r, c, v: f32| Matrix::from_vec(r, c, vec![v; r * c]).expect("test matrix");
    let ckpt = StudyCheckpoint {
        seed: 9,
        fingerprint: 0xfeed,
        next_month: 1,
        months: vec![MonthResult {
            month: 0,
            n_events: 4,
            stale_acc: 0.5,
            stale_bacc: 0.5,
            fresh_acc: 0.75,
            fresh_bacc: 0.75,
        }],
        confusion: Some(ConfusionMatrix::from_counts(vec![vec![1, 0], vec![1, 2]])),
        window_ingest: IngestStats { first_order: 7, missed_transient: 2, ..Default::default() },
        base_pairs: vec![(0, 0), (1, 1)],
        fresh_visible: vec![(0, 0), (1, 1), (2, 0)],
        sage_cfg: SageConfig::new(3, 4, 1, 2),
        stale: vec![(m(3, 2, 0.1), m(3, 2, 0.2), m(1, 2, 0.0))],
        fresh: vec![(m(3, 2, 0.3), m(3, 2, 0.4), m(1, 2, 0.5))],
        encoders: vec![vec![
            (m(3, 4, 0.1), m(1, 4, 0.0)),
            (m(4, 2, 0.1), m(1, 2, 0.0)),
            (m(2, 4, 0.1), m(1, 4, 0.0)),
            (m(4, 3, 0.1), m(1, 3, 0.0)),
        ]],
    };
    let bytes = ckpt.to_bytes();
    // The undamaged snapshot must load — otherwise the drill below
    // would pass vacuously.
    assert_eq!(StudyCheckpoint::from_bytes(&bytes).expect("pristine snapshot loads"), ckpt);

    for seed in [1u64, 4, 6] {
        for &off in &ChaosPlan::from_seed(seed).corrupt_offsets {
            let mut damaged = bytes.clone();
            let i = (off % damaged.len() as u64) as usize;
            damaged[i] ^= 0x20;
            assert!(
                StudyCheckpoint::from_bytes(&damaged).is_err(),
                "flipped byte {i} (seed {seed}) loaded successfully"
            );
        }
    }
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            StudyCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes loaded successfully"
        );
    }
}
