//! Fixed-capacity categorical vocabularies with a deterministic
//! hashing fallback.
//!
//! The paper one-hot encodes high-cardinality categoricals into fixed
//! blocks (e.g. 944 server types, 249 country codes). We assign curated
//! common values to the first slots — so explanation output (Fig. 9) can
//! name them — and hash everything else into the remaining slots with
//! FNV-1a, which keeps the layout stable across runs and datasets.

/// A fixed-size one-hot vocabulary.
#[derive(Debug, Clone)]
pub struct Vocab {
    block: &'static str,
    size: usize,
    known: Vec<&'static str>,
}

impl Vocab {
    /// Build a vocabulary of `size` slots whose first `known.len()`
    /// slots carry the curated names. Panics if `known` overflows `size`
    /// (a construction-time bug, not a data condition).
    pub fn new(block: &'static str, size: usize, known: &[&'static str]) -> Self {
        assert!(known.len() <= size, "{block}: {} curated values > {size} slots", known.len());
        Self { block, size, known: known.to_vec() }
    }

    /// Number of slots.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The slot for a value: curated index if known, otherwise an FNV-1a
    /// hash into the non-curated tail (or the whole block when every
    /// slot is curated).
    pub fn slot(&self, value: &str) -> usize {
        let lower = value.to_ascii_lowercase();
        if let Some(i) = self.known.iter().position(|&k| k == lower) {
            return i;
        }
        let tail = self.size - self.known.len();
        if tail == 0 {
            (fnv1a(&lower) as usize) % self.size
        } else {
            self.known.len() + (fnv1a(&lower) as usize) % tail
        }
    }

    /// Human-readable name of a slot.
    pub fn slot_name(&self, slot: usize) -> String {
        debug_assert!(slot < self.size);
        match self.known.get(slot) {
            Some(k) => format!("{}={}", self.block, k),
            None => format!("{}[h{}]", self.block, slot),
        }
    }
}

/// 64-bit FNV-1a: tiny, deterministic, good enough for slot hashing.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_values_get_fixed_slots() {
        let v = Vocab::new("server", 10, &["nginx", "apache"]);
        assert_eq!(v.slot("nginx"), 0);
        assert_eq!(v.slot("Apache"), 1); // case-insensitive
        assert_eq!(v.slot_name(0), "server=nginx");
    }

    #[test]
    fn unknown_values_hash_into_tail() {
        let v = Vocab::new("server", 10, &["nginx", "apache"]);
        let s = v.slot("lighttpd/1.4");
        assert!(s >= 2 && s < 10);
        // Deterministic.
        assert_eq!(s, v.slot("lighttpd/1.4"));
        assert!(v.slot_name(s).starts_with("server[h"));
    }

    #[test]
    fn fully_curated_vocab_hashes_over_whole_block() {
        let v = Vocab::new("flag", 2, &["a", "b"]);
        assert!(v.slot("zzz") < 2);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a("nginx"), fnv1a("nginx"));
        assert_ne!(fnv1a("nginx"), fnv1a("apache"));
    }
}
