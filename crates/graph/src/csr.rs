//! Frozen undirected CSR view for fast traversal and message passing.

use crate::ids::NodeId;
use crate::schema::EdgeKind;
use crate::store::GraphStore;

/// Compressed-sparse-row adjacency treating every edge as undirected,
/// which is how the paper traverses the TKG (label propagation and
/// GraphSAGE both use the symmetrised adjacency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    kinds: Vec<EdgeKind>,
}

impl Csr {
    /// Build from a [`GraphStore`], symmetrising all edges.
    pub fn from_store(g: &GraphStore) -> Self {
        let _span = trail_obs::span("graph.csr_freeze");
        let n = g.node_count();
        let mut degrees = vec![0usize; n];
        for e in g.edges() {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); acc];
        let mut kinds = vec![EdgeKind::InReport; acc];
        for e in g.edges() {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s]] = e.dst;
            kinds[cursor[s]] = e.kind;
            cursor[s] += 1;
            targets[cursor[d]] = e.src;
            kinds[cursor[d]] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Extend a frozen CSR with the edges appended to `g` since this
    /// CSR was built from it. The store only ever appends edges (and
    /// nodes), so `self`'s per-node runs are prefixes of the rebuilt
    /// adjacency: copying each frozen run and appending the delta
    /// half-edges in edge order reproduces [`Csr::from_store`]'s fill
    /// order — the result is **identical** to a full rebuild, at the
    /// cost of only the delta plus one memcpy.
    pub fn merge_appended(&self, g: &GraphStore) -> Self {
        let _span = trail_obs::span("graph.csr_merge");
        let old_n = self.node_count();
        let n = g.node_count();
        debug_assert!(n >= old_n, "stores only grow");
        let old_edges = self.half_edge_count() / 2;
        let delta = &g.edges()[old_edges..];
        let mut degrees = vec![0usize; n];
        for (v, d) in degrees.iter_mut().enumerate().take(old_n) {
            *d = self.offsets[v + 1] - self.offsets[v];
        }
        for e in delta {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc];
        let mut kinds = vec![EdgeKind::InReport; acc];
        let mut cursor = vec![0usize; n];
        for v in 0..n {
            cursor[v] = offsets[v];
        }
        for v in 0..old_n {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            let at = cursor[v];
            targets[at..at + (hi - lo)].copy_from_slice(&self.targets[lo..hi]);
            kinds[at..at + (hi - lo)].copy_from_slice(&self.kinds[lo..hi]);
            cursor[v] = at + (hi - lo);
        }
        for e in delta {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s]] = e.dst;
            kinds[cursor[s]] = e.kind;
            cursor[s] += 1;
            targets[cursor[d]] = e.src;
            kinds[cursor[d]] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Build from an explicit undirected edge list over `n` nodes,
    /// symmetrising exactly like [`Csr::from_store`] (each edge yields
    /// two half-edges in edge order). The serving layer uses this to
    /// freeze an induced ego-subgraph — a handful of locally re-indexed
    /// nodes — without materialising a whole `GraphStore` per query.
    pub fn from_edge_list(n: usize, edges: &[(NodeId, NodeId, EdgeKind)]) -> Self {
        let mut degrees = vec![0usize; n];
        for &(src, dst, _) in edges {
            degrees[src.index()] += 1;
            degrees[dst.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); acc];
        let mut kinds = vec![EdgeKind::InReport; acc];
        for &(src, dst, kind) in edges {
            let s = src.index();
            let d = dst.index();
            targets[cursor[s]] = dst;
            kinds[cursor[s]] = kind;
            cursor[s] += 1;
            targets[cursor[d]] = src;
            kinds[cursor[d]] = kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed half-edges (2x the undirected edge count).
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Undirected degree of a node.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.offsets[id.index() + 1] - self.offsets[id.index()]
    }

    /// Neighbours of a node.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[id.index()]..self.offsets[id.index() + 1]]
    }

    /// Neighbours of a node with the edge kind of each incident edge.
    pub fn neighbors_with_kinds(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        let r = self.offsets[id.index()]..self.offsets[id.index() + 1];
        self.targets[r.clone()].iter().copied().zip(self.kinds[r].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::NodeKind;

    #[test]
    fn csr_matches_store_adjacency() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        let d = g.upsert_node(NodeKind::Domain, "d");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();

        let csr = Csr::from_store(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.half_edge_count(), 6);
        assert_eq!(csr.degree(e), 2);
        assert_eq!(csr.degree(d), 2);
        let mut n: Vec<_> = csr.neighbors(d).to_vec();
        n.sort();
        assert_eq!(n, vec![e, ip]);
        let kinds: Vec<_> = csr.neighbors_with_kinds(ip).collect();
        assert!(kinds.contains(&(e, EdgeKind::InReport)));
        assert!(kinds.contains(&(d, EdgeKind::ARecord)));
    }

    #[test]
    fn merge_appended_equals_full_rebuild() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);

        // Grow the store: new nodes (one isolated), edges touching both
        // old and new nodes.
        let d = g.upsert_node(NodeKind::Domain, "d");
        let _lonely = g.upsert_node(NodeKind::Asn, "AS7");
        let e2 = g.upsert_node(NodeKind::Event, "e2");
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        g.add_edge(e2, d, EdgeKind::InReport).unwrap();

        assert_eq!(frozen.merge_appended(&g), Csr::from_store(&g));
    }

    #[test]
    fn merge_appended_with_no_delta_is_identity() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);
        assert_eq!(frozen.merge_appended(&g), frozen);
    }

    #[test]
    fn chained_merges_track_a_growing_store() {
        let mut g = GraphStore::new();
        let mut csr = Csr::from_store(&g);
        let hub = {
            let id = g.upsert_node(NodeKind::Ip, "hub");
            csr = csr.merge_appended(&g);
            id
        };
        for step in 0..5 {
            let e = g.upsert_node(NodeKind::Event, &format!("e{step}"));
            g.add_edge(e, hub, EdgeKind::InReport).unwrap();
            csr = csr.merge_appended(&g);
            assert_eq!(csr, Csr::from_store(&g), "diverged at step {step}");
        }
        assert_eq!(csr.degree(hub), 5);
    }

    #[test]
    fn from_edge_list_matches_from_store() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        let d = g.upsert_node(NodeKind::Domain, "d");
        let _lonely = g.upsert_node(NodeKind::Asn, "AS7");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        let edges: Vec<_> = g.edges().iter().map(|e| (e.src, e.dst, e.kind)).collect();
        assert_eq!(Csr::from_edge_list(g.node_count(), &edges), Csr::from_store(&g));
    }

    #[test]
    fn from_edge_list_empty_and_isolated() {
        let csr = Csr::from_edge_list(3, &[]);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.half_edge_count(), 0);
        assert!(csr.neighbors(NodeId(1)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_store(&GraphStore::new());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.half_edge_count(), 0);
    }

    #[test]
    fn isolated_node_has_empty_neighbor_slice() {
        let mut g = GraphStore::new();
        let a = g.upsert_node(NodeKind::Asn, "AS1");
        let csr = Csr::from_store(&g);
        assert_eq!(csr.degree(a), 0);
        assert!(csr.neighbors(a).is_empty());
        assert_eq!(csr.neighbors_with_kinds(a).count(), 0);
    }

    #[test]
    fn parallel_edges_of_different_kinds_both_appear() {
        let mut g = GraphStore::new();
        let u = g.upsert_node(NodeKind::Url, "http://a.example/x");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = g.upsert_node(NodeKind::Domain, "a.example");
        g.add_edge(u, ip, EdgeKind::UrlResolvesTo).unwrap();
        g.add_edge(u, d, EdgeKind::HostedOn).unwrap();
        g.add_edge(d, ip, EdgeKind::DomainResolvesTo).unwrap();
        let csr = Csr::from_store(&g);
        let kinds: Vec<EdgeKind> = csr.neighbors_with_kinds(u).map(|(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::UrlResolvesTo));
        assert!(kinds.contains(&EdgeKind::HostedOn));
    }
}
