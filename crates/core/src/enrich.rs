//! The two-hop enrichment pipeline (paper Section IV-A/B).
//!
//! For every reported (first-order) IOC we request an analysis from the
//! intelligence exchange. The analysis yields features (encoded into
//! the TKG feature store) and *secondary IOCs* — IPs behind domains,
//! historic domains behind IPs, ASNs, the domains URLs are hosted on.
//! Secondary IOCs are analysed too (their own features and edges back
//! into the graph) but their relational output is not expanded further:
//! "due to time and space constraints, we limit it to two hops from the
//! initial event."
//!
//! Identity discipline: relational strings arrive in whatever spelling
//! the feed uses (mixed case, trailing dots, defanged). Every string is
//! parsed into its canonical [`IocKey`](trail_ioc::IocKey) before it
//! touches the graph — both for upserts and for the depth-2 "already
//! present?" lookups — so a noisy spelling can never orphan an edge or
//! split a node.
//!
//! Failure discipline: analysis queries distinguish *permanent* gaps
//! (`Ok(None)` — the exchange has no record) from *transient* faults
//! (`Err` — rate-limit/timeout; a retry may succeed). The enricher
//! retries transient faults up to [`RetryPolicy::max_attempts`] with
//! exponential backoff, and [`IngestStats`] accounts for every outcome.
//!
//! ## Query/apply split
//!
//! Internally every analysis is factored into a pure **query** step —
//! issue the lookup under the retry policy, parse the relational
//! strings, encode features — and a graph-mutating **apply** step. The
//! query step depends only on the canonical key (outcomes, fault
//! schedules and gaps are all deterministic per key and attempt), never
//! on graph state, so its result can be memoised in a [`QueryMap`] and
//! replayed later. The sequential path runs query-then-apply inline;
//! the sharded build (`crate::shard`) computes the query maps in
//! parallel and replays them through the *same* apply code, which is
//! why it is bitwise-identical to the sequential build.

use std::cell::Cell;
use std::collections::HashMap;

use trail_graph::{EdgeKind, NodeId, NodeKind};
use trail_ioc::domain::DomainIoc;
use trail_ioc::ip::IpIoc;
use trail_ioc::url::UrlIoc;
use trail_ioc::{Ioc, IocKeyRef};
use trail_osint::{OsintClient, OsintError};

use crate::collector::CollectedEvent;
use crate::sparse::SparseVec;
use crate::tkg::Tkg;

/// Bounded retry with exponential backoff for transient OSINT faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per analysis query (>= 1; 1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff_ms << (n - 1)`. The
    /// exchange is in-process, so the delay is accounted, not slept.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_backoff_ms: 50 }
    }
}

impl RetryPolicy {
    /// Backoff budget charged before retry attempt `attempt` (1-based
    /// over retries: the first *re*try is attempt 1).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_backoff_ms << attempt.saturating_sub(1).min(16)
    }
}

/// An enrichment-wide fault budget. When a degraded feed burns through
/// either limit, the enricher stops retrying (each query gets exactly
/// one attempt) so a long outage costs O(queries) instead of
/// O(queries × max_attempts). The pipeline still completes — remaining
/// failures are accounted as transient misses and surface in
/// [`IngestStats::degradation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnrichBudget {
    /// Total analysis attempts (first tries + retries) before the
    /// enricher degrades to single-attempt mode.
    pub max_attempts: u64,
    /// Total simulated backoff (ms) charged before degrading.
    pub max_backoff_ms: u64,
}

impl Default for EnrichBudget {
    fn default() -> Self {
        // Generous: ~4 attempts per query on the default world before
        // the budget bites. Chaos runs shrink this deliberately.
        Self { max_attempts: 2_000_000, max_backoff_ms: 60_000_000 }
    }
}

/// Enrichment pipeline over an OSINT client.
pub struct Enricher<'a> {
    client: &'a OsintClient,
    /// Analyses are requested "as of" this day (the TKG build date).
    pub asof_day: u32,
    /// Retry policy for transient analysis faults.
    pub retry: RetryPolicy,
    /// Optional enrichment-wide budget; `None` = unbounded retries.
    budget: Option<EnrichBudget>,
    /// Attempts issued so far (all queries, all events).
    spent_attempts: Cell<u64>,
    /// Backoff charged so far (ms).
    spent_backoff_ms: Cell<u64>,
}

/// What one event ingestion touched, with the full outcome taxonomy of
/// the analysis queries it issued.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// First-order IOC nodes attached.
    pub first_order: usize,
    /// Secondary IOC nodes discovered.
    pub secondary: usize,
    /// Edges added.
    pub edges: usize,
    /// Depth-2 relational references that resolved (by canonical
    /// identity) to a node already in the graph and linked to it.
    pub linked: usize,
    /// Analyses that returned no record — the exchange answered and the
    /// answer was "nothing"; retrying cannot help.
    pub missed_permanent: usize,
    /// Analyses abandoned because every attempt faulted transiently.
    pub missed_transient: usize,
    /// Transient faults that were retried (attempts beyond the first).
    pub retried: usize,
    /// Analyses rejected by the client's circuit breaker before they
    /// reached the feed (abandoned without retrying — the breaker must
    /// cool down first).
    pub breaker_rejected: usize,
    /// Relational strings that failed to parse as any IOC.
    pub dropped_unparseable: usize,
    /// Total simulated backoff charged by retries, in milliseconds.
    pub backoff_ms: u64,
}

impl IngestStats {
    /// Accumulate another event's stats into this one.
    pub fn absorb(&mut self, other: &IngestStats) {
        self.first_order += other.first_order;
        self.secondary += other.secondary;
        self.edges += other.edges;
        self.linked += other.linked;
        self.missed_permanent += other.missed_permanent;
        self.missed_transient += other.missed_transient;
        self.retried += other.retried;
        self.breaker_rejected += other.breaker_rejected;
        self.dropped_unparseable += other.dropped_unparseable;
        self.backoff_ms += other.backoff_ms;
    }

    /// Fraction of analysis queries that failed for *recoverable*
    /// reasons (transient outage or breaker rejection) — 0.0 on a
    /// healthy feed, approaching 1.0 when the feed is fully dead.
    /// Permanent gaps are excluded: the feed answered, the answer was
    /// "nothing", and a healthier run would see the same gap. This is
    /// the score attribution carries alongside results built on a
    /// partial TKG.
    pub fn degradation(&self) -> f64 {
        let queries = self.first_order + self.secondary;
        if queries == 0 {
            return 0.0;
        }
        (self.missed_transient + self.breaker_rejected) as f64 / queries as f64
    }

    /// The taxonomy as a JSON object (what `BENCH_repro.json` records
    /// per stage).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "first_order": self.first_order,
            "secondary": self.secondary,
            "edges": self.edges,
            "linked": self.linked,
            "missed_permanent": self.missed_permanent,
            "missed_transient": self.missed_transient,
            "retried": self.retried,
            "breaker_rejected": self.breaker_rejected,
            "dropped_unparseable": self.dropped_unparseable,
            "backoff_ms": self.backoff_ms,
        })
    }
}

/// Terminal outcome of one fallible analysis query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryOutcome {
    /// The analysis succeeded on some attempt.
    Success,
    /// The exchange answered "no record"; retrying cannot help.
    PermanentMiss,
    /// Every admitted attempt faulted transiently.
    TransientMiss,
    /// The circuit breaker shed the query before it reached the feed.
    BreakerRejected,
}

/// Retry accounting of one query: what [`Enricher`] charged on the way
/// to the terminal outcome. Charged into an event's [`IngestStats`] at
/// apply time; all fields are commutative adds, so replaying a memoised
/// cost yields the same totals as the live query.
#[derive(Debug, Clone, Copy)]
struct QueryCost {
    retried: usize,
    backoff_ms: u64,
    outcome: QueryOutcome,
}

impl QueryCost {
    fn charge(&self, stats: &mut IngestStats) {
        stats.retried += self.retried;
        stats.backoff_ms += self.backoff_ms;
        match self.outcome {
            QueryOutcome::Success => {}
            QueryOutcome::PermanentMiss => stats.missed_permanent += 1,
            QueryOutcome::TransientMiss => stats.missed_transient += 1,
            QueryOutcome::BreakerRejected => stats.breaker_rejected += 1,
        }
    }
}

/// Parsed relational output of a successful URL analysis.
#[derive(Debug)]
struct UrlPayload {
    resolved: Vec<IpIoc>,
    dropped: usize,
    features: Option<SparseVec>,
}

/// Memoisable result of one URL analysis query.
#[derive(Debug)]
pub(crate) struct UrlRecord {
    cost: QueryCost,
    payload: Option<UrlPayload>,
}

/// Parsed relational output of a successful domain analysis.
#[derive(Debug)]
struct DomainPayload {
    resolved: Vec<IpIoc>,
    dropped_resolved: usize,
    hosted: Vec<UrlIoc>,
    dropped_hosted: usize,
    features: Option<SparseVec>,
}

/// Memoisable result of one domain analysis query.
#[derive(Debug)]
pub(crate) struct DomainRecord {
    cost: QueryCost,
    payload: Option<DomainPayload>,
}

/// Parsed relational output of a successful IP analysis.
#[derive(Debug)]
struct IpPayload {
    asn: Option<u32>,
    historic: Vec<DomainIoc>,
    dropped: usize,
    features: Option<SparseVec>,
}

/// Memoisable result of one IP analysis query.
#[derive(Debug)]
pub(crate) struct IpRecord {
    cost: QueryCost,
    payload: Option<IpPayload>,
}

/// One shard's memoised analysis results, keyed by canonical IOC text.
/// Query outcomes are pure per key (see the module docs), so a record
/// computed by any worker equals the record the sequential walk would
/// have produced at any position.
#[derive(Debug, Default)]
pub(crate) struct QueryMap {
    urls: HashMap<String, UrlRecord>,
    domains: HashMap<String, DomainRecord>,
    ips: HashMap<String, IpRecord>,
}

impl QueryMap {
    /// Number of memoised analyses across all kinds.
    #[allow(dead_code)] // exercised by the record/replay tests
    pub(crate) fn len(&self) -> usize {
        self.urls.len() + self.domains.len() + self.ips.len()
    }
}

/// How [`Enricher`] sources its analysis queries during an ingest.
pub(crate) enum QueryLog<'m> {
    /// Compute every query live (the plain sequential path).
    Live,
    /// Compute live, memoising one record per canonical key — the
    /// shard workers' mode. Repeat keys are served from the map, which
    /// is both the dedup win and provably outcome-identical.
    Record(&'m mut QueryMap),
    /// Serve queries from a prepared map; a miss falls back to a live
    /// query, which is identical by purity (the merge replay mode).
    Replay(&'m QueryMap),
}

impl<'a> Enricher<'a> {
    /// New enricher querying analyses as of `asof_day`, with the
    /// default retry policy.
    pub fn new(client: &'a OsintClient, asof_day: u32) -> Self {
        Self::with_retry(client, asof_day, RetryPolicy::default())
    }

    /// New enricher with an explicit retry policy.
    pub fn with_retry(client: &'a OsintClient, asof_day: u32, retry: RetryPolicy) -> Self {
        Self {
            client,
            asof_day,
            retry,
            budget: None,
            spent_attempts: Cell::new(0),
            spent_backoff_ms: Cell::new(0),
        }
    }

    /// Attach an enrichment-wide fault budget (builder style).
    pub fn with_budget(mut self, budget: EnrichBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Whether the fault budget is spent (always `false` without one).
    /// Once true, every remaining query gets exactly one attempt.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.is_some_and(|b| {
            self.spent_attempts.get() >= b.max_attempts
                || self.spent_backoff_ms.get() >= b.max_backoff_ms
        })
    }

    /// Whether this enricher's query outcomes depend on cross-query
    /// state (a circuit breaker or a fault budget). When true, query
    /// results are order-dependent and must not be memoised/replayed —
    /// the sharded build falls back to the sequential path.
    pub fn order_dependent(&self) -> bool {
        self.client.breaker().is_some() || self.budget.is_some()
    }

    /// Ingest one collected event: create the event node, attach
    /// first-order IOCs, run two-hop enrichment, store features.
    pub fn ingest(&self, tkg: &mut Tkg, event: &CollectedEvent) -> IngestStats {
        self.ingest_logged(tkg, event, &mut QueryLog::Live)
    }

    /// [`Self::ingest`] with an explicit query source (see [`QueryLog`]).
    pub(crate) fn ingest_logged(
        &self,
        tkg: &mut Tkg,
        event: &CollectedEvent,
        log: &mut QueryLog<'_>,
    ) -> IngestStats {
        let _ingest = trail_obs::span("enrich.ingest");
        let mut stats = IngestStats::default();
        let event_node = tkg.graph.upsert_node(NodeKind::Event, &event.report.id);
        tkg.add_event(event_node, &event.report.id, event.report.created_day, event.apt);

        // Pass 1: first-order nodes + InReport edges.
        let mut first_order: Vec<(NodeId, Ioc)> = Vec::with_capacity(event.report.iocs.len());
        {
            let _pass = trail_obs::span("attach");
            for ioc in &event.report.iocs {
                let node = tkg.upsert_ioc_ref(ioc.key_ref());
                tkg.graph.mark_first_order(node);
                if tkg.graph.add_edge(event_node, node, EdgeKind::InReport).expect("schema") {
                    stats.edges += 1;
                }
                stats.first_order += 1;
                first_order.push((node, ioc.clone()));
            }
        }

        // Pass 2: analyse first-order IOCs; collect secondary IOCs.
        let mut secondary: Vec<(NodeId, Ioc)> = Vec::new();
        {
            let _pass = trail_obs::span("depth1");
            for (node, ioc) in &first_order {
                match ioc {
                    Ioc::Url(url) => {
                        self.enrich_url(tkg, *node, url, true, &mut secondary, &mut stats, log)
                    }
                    Ioc::Domain(d) => {
                        self.enrich_domain(tkg, *node, d, true, &mut secondary, &mut stats, log)
                    }
                    Ioc::Ip(ip) => {
                        self.enrich_ip(tkg, *node, ip, true, &mut secondary, &mut stats, log)
                    }
                }
            }
        }

        // Pass 3: analyse secondary IOCs — features plus edges to nodes
        // already present; no further expansion.
        let mut sink: Vec<(NodeId, Ioc)> = Vec::new();
        {
            let _pass = trail_obs::span("depth2");
            for (node, ioc) in &secondary {
                match ioc {
                    Ioc::Domain(d) => {
                        self.enrich_domain(tkg, *node, d, false, &mut sink, &mut stats, log)
                    }
                    Ioc::Ip(ip) => {
                        self.enrich_ip(tkg, *node, ip, false, &mut sink, &mut stats, log)
                    }
                    Ioc::Url(url) => {
                        self.enrich_url(tkg, *node, url, false, &mut sink, &mut stats, log)
                    }
                }
            }
        }
        stats.secondary = secondary.len();
        stats
    }

    /// Run one fallible analysis query under the retry policy and the
    /// enrichment-wide budget, returning the retry cost alongside the
    /// result.
    ///
    /// Outcome taxonomy (exactly one per query):
    /// * `Ok(Some)` — success; stop.
    /// * `Ok(None)` — permanent gap; retrying cannot help, stop.
    /// * transient `Err` — retry with backoff until the attempt cap or
    ///   the budget runs out, then a transient miss.
    /// * non-transient `Err` (breaker rejection) — abandoned
    ///   immediately, since retrying against an open breaker is exactly
    ///   the load it exists to shed.
    fn run_query<T>(
        &self,
        mut attempt_fn: impl FnMut(u32) -> Result<Option<T>, OsintError>,
    ) -> (QueryCost, Option<T>) {
        let max = if self.budget_exhausted() { 1 } else { self.retry.max_attempts.max(1) };
        let mut cost =
            QueryCost { retried: 0, backoff_ms: 0, outcome: QueryOutcome::TransientMiss };
        let mut result = None;
        let mut attempts: u64 = 0;
        'attempts: for attempt in 0..max {
            if attempt > 0 {
                cost.retried += 1;
                let backoff = self.retry.backoff_ms(attempt);
                cost.backoff_ms += backoff;
                self.spent_backoff_ms.set(self.spent_backoff_ms.get() + backoff);
                trail_obs::observe(
                    "enrich.retry_backoff_ms",
                    trail_obs::bounds::BACKOFF_MS,
                    backoff,
                );
            }
            attempts += 1;
            self.spent_attempts.set(self.spent_attempts.get() + 1);
            match attempt_fn(attempt) {
                Ok(Some(t)) => {
                    cost.outcome = QueryOutcome::Success;
                    result = Some(t);
                    break 'attempts;
                }
                Ok(None) => {
                    cost.outcome = QueryOutcome::PermanentMiss;
                    break 'attempts;
                }
                Err(e) if e.is_transient() => {
                    if attempt + 1 == max || self.budget_exhausted() {
                        cost.outcome = QueryOutcome::TransientMiss;
                        break 'attempts;
                    }
                }
                Err(_) => {
                    cost.outcome = QueryOutcome::BreakerRejected;
                    break 'attempts;
                }
            }
        }
        trail_obs::observe("enrich.attempts_per_query", trail_obs::bounds::ATTEMPTS, attempts);
        (cost, result)
    }

    /// Resolve a depth-2 relational reference against the graph by
    /// canonical identity. The two-hop cap means a missing node is
    /// expected (not an error); a found node counts as `linked`.
    fn find_linked(&self, tkg: &Tkg, key: IocKeyRef<'_>, stats: &mut IngestStats) -> Option<NodeId> {
        let found = tkg.find_ioc_ref(key);
        if found.is_some() {
            stats.linked += 1;
        }
        found
    }

    /// Pure query step for one URL: analysis under retries, children
    /// parsed, features encoded. Depends only on the canonical key (and
    /// `asof_day`), never on graph state.
    fn query_url(
        &self,
        want_features: bool,
        encoder: &trail_ioc::features::UrlEncoder,
        url: &UrlIoc,
    ) -> UrlRecord {
        let (cost, analysis) = self.run_query(|attempt| {
            self.client.try_analyze_url(&url.text, self.asof_day, attempt)
        });
        let payload = analysis.map(|a| {
            let mut resolved = Vec::with_capacity(a.resolved_ips.len());
            let mut dropped = 0;
            for ip_text in &a.resolved_ips {
                match IpIoc::parse(ip_text) {
                    Ok(ip) => resolved.push(ip),
                    Err(_) => dropped += 1,
                }
            }
            let features =
                want_features.then(|| SparseVec::from_dense(&encoder.encode(url, &a)));
            UrlPayload { resolved, dropped, features }
        });
        UrlRecord { cost, payload }
    }

    /// Pure query step for one domain (see [`Self::query_url`]).
    fn query_domain(
        &self,
        want_features: bool,
        encoder: &trail_ioc::features::DomainEncoder,
        domain: &DomainIoc,
    ) -> DomainRecord {
        let (cost, analysis) = self.run_query(|attempt| {
            self.client.try_analyze_domain(&domain.text, self.asof_day, attempt)
        });
        let payload = analysis.map(|a| {
            let mut resolved = Vec::with_capacity(a.resolved_ips.len());
            let mut dropped_resolved = 0;
            for ip_text in &a.resolved_ips {
                match IpIoc::parse(ip_text) {
                    Ok(ip) => resolved.push(ip),
                    Err(_) => dropped_resolved += 1,
                }
            }
            let mut hosted = Vec::with_capacity(a.hosted_urls.len());
            let mut dropped_hosted = 0;
            for u_text in &a.hosted_urls {
                match UrlIoc::parse(u_text) {
                    Ok(u) => hosted.push(u),
                    Err(_) => dropped_hosted += 1,
                }
            }
            let features =
                want_features.then(|| SparseVec::from_dense(&encoder.encode(domain, &a)));
            DomainPayload { resolved, dropped_resolved, hosted, dropped_hosted, features }
        });
        DomainRecord { cost, payload }
    }

    /// Pure query step for one IP (see [`Self::query_url`]).
    fn query_ip(
        &self,
        want_features: bool,
        encoder: &trail_ioc::features::IpEncoder,
        ip: &IpIoc,
    ) -> IpRecord {
        let (cost, analysis) = self.run_query(|attempt| {
            self.client.try_analyze_ip(&ip.text, self.asof_day, attempt)
        });
        let payload = analysis.map(|a| {
            let mut historic = Vec::with_capacity(a.historic_domains.len());
            let mut dropped = 0;
            for d_text in &a.historic_domains {
                match DomainIoc::parse(d_text) {
                    Ok(d) => historic.push(d),
                    Err(_) => dropped += 1,
                }
            }
            let features = want_features.then(|| SparseVec::from_dense(&encoder.encode(ip, &a)));
            IpPayload { asn: a.asn, historic, dropped, features }
        });
        IpRecord { cost, payload }
    }

    /// Graph-mutating apply step for a URL query result.
    fn apply_url(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        expand: bool,
        rec: &UrlRecord,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
    ) {
        rec.cost.charge(stats);
        let Some(p) = &rec.payload else {
            return;
        };
        for ip in &p.resolved {
            let ioc = Ioc::Ip(ip.clone());
            let ip_node = if expand {
                Some(self.secondary_node(tkg, ioc, secondary))
            } else {
                self.find_linked(tkg, ioc.key_ref(), stats)
            };
            if let Some(ip_node) = ip_node {
                if tkg.graph.add_edge(node, ip_node, EdgeKind::UrlResolvesTo).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        stats.dropped_unparseable += p.dropped;
        if let Some(f) = &p.features {
            if !tkg.has_features(node) {
                tkg.set_features(node, f.clone());
            }
        }
    }

    /// Graph-mutating apply step for a domain query result.
    fn apply_domain(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        expand: bool,
        rec: &DomainRecord,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
    ) {
        rec.cost.charge(stats);
        let Some(p) = &rec.payload else {
            return;
        };
        for ip in &p.resolved {
            let ioc = Ioc::Ip(ip.clone());
            let ip_node = if expand {
                Some(self.secondary_node(tkg, ioc, secondary))
            } else {
                // Two-hop cap: only link to IPs already in the graph.
                self.find_linked(tkg, ioc.key_ref(), stats)
            };
            if let Some(ip_node) = ip_node {
                if tkg.graph.add_edge(node, ip_node, EdgeKind::DomainResolvesTo).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        stats.dropped_unparseable += p.dropped_resolved;
        // Secondary URLs from the domain's url_list (expansion only).
        if expand {
            for u in &p.hosted {
                let u_node = self.secondary_node(tkg, Ioc::Url(u.clone()), secondary);
                if tkg.graph.add_edge(u_node, node, EdgeKind::HostedOn).expect("schema") {
                    stats.edges += 1;
                }
            }
            stats.dropped_unparseable += p.dropped_hosted;
        }
        if let Some(f) = &p.features {
            if !tkg.has_features(node) {
                tkg.set_features(node, f.clone());
            }
        }
    }

    /// Graph-mutating apply step for an IP query result.
    fn apply_ip(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        expand: bool,
        rec: &IpRecord,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
    ) {
        rec.cost.charge(stats);
        let Some(p) = &rec.payload else {
            return;
        };
        // ASN node (whois/dig output) — cheap metadata, always linked.
        if let Some(asn) = p.asn {
            let asn_node = tkg.graph.upsert_node(NodeKind::Asn, &format!("AS{asn}"));
            if tkg.graph.add_edge(node, asn_node, EdgeKind::InGroup).expect("schema") {
                stats.edges += 1;
            }
        }
        for d in &p.historic {
            let ioc = Ioc::Domain(d.clone());
            let d_node = if expand {
                Some(self.secondary_node(tkg, ioc, secondary))
            } else {
                self.find_linked(tkg, ioc.key_ref(), stats)
            };
            if let Some(d_node) = d_node {
                if tkg.graph.add_edge(node, d_node, EdgeKind::ARecord).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        stats.dropped_unparseable += p.dropped;
        if let Some(f) = &p.features {
            if !tkg.has_features(node) {
                tkg.set_features(node, f.clone());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enrich_url(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        url: &UrlIoc,
        expand: bool,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
        log: &mut QueryLog<'_>,
    ) {
        // Lexical relation, no lookup needed: HostedOn.
        if let Some(domain) = url.hosted_domain() {
            let ioc = Ioc::Domain(domain.clone());
            let d_node = if expand {
                Some(self.secondary_node(tkg, ioc, secondary))
            } else {
                self.find_linked(tkg, ioc.key_ref(), stats)
            };
            if let Some(d_node) = d_node {
                if tkg.graph.add_edge(node, d_node, EdgeKind::HostedOn).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        match log {
            QueryLog::Live => {
                let rec = self.query_url(!tkg.has_features(node), &tkg.url_encoder, url);
                self.apply_url(tkg, node, expand, &rec, secondary, stats);
            }
            QueryLog::Record(map) => {
                if !map.urls.contains_key(&url.text) {
                    let rec = self.query_url(true, &tkg.url_encoder, url);
                    map.urls.insert(url.text.clone(), rec);
                }
                let rec = &map.urls[&url.text];
                self.apply_url(tkg, node, expand, rec, secondary, stats);
            }
            QueryLog::Replay(map) => match map.urls.get(&url.text) {
                Some(rec) => self.apply_url(tkg, node, expand, rec, secondary, stats),
                None => {
                    let rec = self.query_url(true, &tkg.url_encoder, url);
                    self.apply_url(tkg, node, expand, &rec, secondary, stats);
                }
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enrich_domain(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        domain: &DomainIoc,
        expand: bool,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
        log: &mut QueryLog<'_>,
    ) {
        match log {
            QueryLog::Live => {
                let rec =
                    self.query_domain(!tkg.has_features(node), &tkg.domain_encoder, domain);
                self.apply_domain(tkg, node, expand, &rec, secondary, stats);
            }
            QueryLog::Record(map) => {
                if !map.domains.contains_key(&domain.text) {
                    let rec = self.query_domain(true, &tkg.domain_encoder, domain);
                    map.domains.insert(domain.text.clone(), rec);
                }
                let rec = &map.domains[&domain.text];
                self.apply_domain(tkg, node, expand, rec, secondary, stats);
            }
            QueryLog::Replay(map) => match map.domains.get(&domain.text) {
                Some(rec) => self.apply_domain(tkg, node, expand, rec, secondary, stats),
                None => {
                    let rec = self.query_domain(true, &tkg.domain_encoder, domain);
                    self.apply_domain(tkg, node, expand, &rec, secondary, stats);
                }
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enrich_ip(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        ip: &IpIoc,
        expand: bool,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
        log: &mut QueryLog<'_>,
    ) {
        match log {
            QueryLog::Live => {
                let rec = self.query_ip(!tkg.has_features(node), &tkg.ip_encoder, ip);
                self.apply_ip(tkg, node, expand, &rec, secondary, stats);
            }
            QueryLog::Record(map) => {
                if !map.ips.contains_key(&ip.text) {
                    let rec = self.query_ip(true, &tkg.ip_encoder, ip);
                    map.ips.insert(ip.text.clone(), rec);
                }
                let rec = &map.ips[&ip.text];
                self.apply_ip(tkg, node, expand, rec, secondary, stats);
            }
            QueryLog::Replay(map) => match map.ips.get(&ip.text) {
                Some(rec) => self.apply_ip(tkg, node, expand, rec, secondary, stats),
                None => {
                    let rec = self.query_ip(true, &tkg.ip_encoder, ip);
                    self.apply_ip(tkg, node, expand, &rec, secondary, stats);
                }
            },
        }
    }

    /// Upsert a secondary IOC node; queue it for depth-2 analysis the
    /// first time it appears in this event.
    fn secondary_node(
        &self,
        tkg: &mut Tkg,
        ioc: Ioc,
        secondary: &mut Vec<(NodeId, Ioc)>,
    ) -> NodeId {
        let (node, is_new) = tkg.upsert_ioc_full(ioc.key_ref());
        if is_new {
            secondary.push((node, ioc));
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{collect, AptRegistry};
    use std::sync::Arc;
    use trail_osint::{World, WorldConfig};

    fn setup() -> (OsintClient, Vec<CollectedEvent>) {
        setup_with(|_| {})
    }

    fn setup_with(f: impl FnOnce(&mut WorldConfig)) -> (OsintClient, Vec<CollectedEvent>) {
        let mut cfg = WorldConfig::tiny(31);
        f(&mut cfg);
        let world = Arc::new(World::generate(cfg));
        let client = OsintClient::new(world);
        let reports = client.events_before(client.world().config.cutoff_day);
        let registry = AptRegistry::new(client.world().config.n_apts);
        let (events, _) = collect(&reports, &registry);
        (client, events)
    }

    #[test]
    fn ingest_builds_connected_event_subgraph() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        let stats = enricher.ingest(&mut tkg, &events[0]);
        assert!(stats.first_order > 0);
        assert!(stats.edges >= stats.first_order);
        let e = tkg.event_by_report(&events[0].report.id).unwrap();
        assert!(tkg.graph.degree(e.node) == stats.first_order);
    }

    #[test]
    fn enrichment_discovers_secondary_iocs() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        let mut total_secondary = 0;
        for e in events.iter().take(10) {
            total_secondary += enricher.ingest(&mut tkg, e).secondary;
        }
        assert!(total_secondary > 0, "no secondary IOCs found across 10 events");
        // Secondary nodes are not first-order.
        let some_secondary = tkg
            .graph
            .iter_nodes()
            .any(|(_, n)| !n.first_order() && matches!(n.kind, NodeKind::Ip | NodeKind::Domain));
        assert!(some_secondary);
    }

    #[test]
    fn repeated_ingest_of_shared_iocs_is_idempotent_on_edges() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        for e in events.iter().take(20) {
            enricher.ingest(&mut tkg, e);
        }
        // No duplicate (src, dst, kind) edges can exist by construction;
        // verify via a scan.
        let mut seen = std::collections::HashSet::new();
        for e in tkg.graph.edges() {
            assert!(seen.insert((e.src, e.dst, e.kind)), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn features_are_stored_for_analysable_iocs() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        for e in events.iter().take(15) {
            enricher.ingest(&mut tkg, e);
        }
        let n_featured = tkg.featured_nodes(trail_ioc::IocKind::Ip).len()
            + tkg.featured_nodes(trail_ioc::IocKind::Url).len()
            + tkg.featured_nodes(trail_ioc::IocKind::Domain).len();
        assert!(n_featured > 10, "only {n_featured} featured nodes");
    }

    #[test]
    fn url_hosted_on_edges_exist() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        for e in events.iter().take(20) {
            enricher.ingest(&mut tkg, e);
        }
        let hosted = tkg.graph.edge_counts_by_kind()[EdgeKind::HostedOn.index()];
        assert!(hosted > 0, "no HostedOn edges");
        let in_group = tkg.graph.edge_counts_by_kind()[EdgeKind::InGroup.index()];
        assert!(in_group > 0, "no InGroup (ASN) edges");
    }

    #[test]
    fn taxonomy_counts_permanent_misses_and_links() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        let mut total = IngestStats::default();
        for e in events.iter().take(20) {
            total.absorb(&enricher.ingest(&mut tkg, e));
        }
        // miss prob is 10% → some analyses gap out permanently; with no
        // fault injection nothing is transient and nothing retries.
        assert!(total.missed_permanent > 0, "no permanent misses at p=0.1");
        assert_eq!(total.missed_transient, 0);
        assert_eq!(total.retried, 0);
        assert_eq!(total.breaker_rejected, 0);
        assert_eq!(total.backoff_ms, 0);
        // Permanent gaps do not count as degradation: the feed answered.
        assert_eq!(total.degradation(), 0.0);
        // Depth-2 references do resolve against existing nodes.
        assert!(total.linked > 0, "no depth-2 links formed");
        let json = total.to_json();
        assert_eq!(json["linked"].as_u64().unwrap() as usize, total.linked);
        assert_eq!(
            json["missed_permanent"].as_u64().unwrap() as usize,
            total.missed_permanent
        );
    }

    #[test]
    fn transient_faults_retry_and_converge_to_the_clean_graph() {
        let build = |fault_prob: f32, max_attempts: u32| {
            let (client, events) = setup_with(|cfg| cfg.transient_fault_prob = fault_prob);
            let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
            let retry = RetryPolicy { max_attempts, ..RetryPolicy::default() };
            let enricher =
                Enricher::with_retry(&client, client.world().config.cutoff_day, retry);
            let mut total = IngestStats::default();
            for e in events.iter().take(20) {
                total.absorb(&enricher.ingest(&mut tkg, e));
            }
            (tkg, total)
        };
        let (clean_tkg, clean) = build(0.0, 3);
        // With faults and generous retries, every transient fault is
        // eventually retried through and the graph is identical.
        let (faulty_tkg, faulty) = build(0.3, 12);
        assert!(faulty.retried > 0, "30% fault rate triggered no retries");
        assert!(faulty.backoff_ms > 0, "retries charged no backoff");
        assert_eq!(faulty.missed_transient, 0, "12 attempts did not absorb p=0.3 faults");
        assert_eq!(faulty.missed_permanent, clean.missed_permanent);
        assert_eq!(faulty_tkg.graph.node_count(), clean_tkg.graph.node_count());
        assert_eq!(faulty_tkg.graph.edge_count(), clean_tkg.graph.edge_count());
        // With retries disabled, persistent fault streams become
        // transient misses and the graph can only shrink.
        let (small_tkg, none) = build(0.9, 1);
        assert_eq!(none.retried, 0);
        assert!(none.missed_transient > 0, "90% faults with no retries missed nothing");
        assert!(small_tkg.graph.edge_count() <= clean_tkg.graph.edge_count());
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let retry = RetryPolicy { max_attempts: 4, base_backoff_ms: 50 };
        assert_eq!(retry.backoff_ms(1), 50);
        assert_eq!(retry.backoff_ms(2), 100);
        assert_eq!(retry.backoff_ms(3), 200);
    }

    #[test]
    fn dead_feed_with_breaker_yields_partial_graph_and_exact_accounting() {
        use trail_osint::{BreakerConfig, CircuitBreaker};
        // Every attempt faults: enrichment must still complete, every
        // query must land in exactly one recoverable-failure bucket,
        // and the breaker must shed most of the load.
        let mut cfg = WorldConfig::tiny(31);
        cfg.transient_fault_prob = 1.0;
        let world = Arc::new(World::generate(cfg));
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig::default()));
        let client = OsintClient::with_breaker(world, Arc::clone(&breaker));
        let reports = client.events_before(client.world().config.cutoff_day);
        let registry = AptRegistry::new(client.world().config.n_apts);
        let (events, _) = collect(&reports, &registry);

        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        assert!(enricher.order_dependent(), "breaker-guarded enrichment is order-dependent");
        let mut total = IngestStats::default();
        for e in events.iter().take(20) {
            total.absorb(&enricher.ingest(&mut tkg, e));
        }
        // The TKG is partial but well-formed: events and first-order
        // IOCs attached even though no analysis ever succeeded.
        assert!(total.first_order > 0);
        assert!(tkg.graph.node_count() > 0);
        assert!(tkg.graph.edge_count() >= total.first_order);
        // Exact accounting: every query failed recoverably, none
        // permanently (the fault fires before the gap check).
        assert_eq!(total.missed_permanent, 0);
        assert!(total.breaker_rejected > 0, "breaker never shed load on a dead feed");
        assert!(total.missed_transient > 0, "no admitted query faulted through");
        assert_eq!(
            total.missed_transient + total.breaker_rejected,
            total.first_order + total.secondary,
            "some query is unaccounted for"
        );
        assert_eq!(total.degradation(), 1.0);
    }

    #[test]
    fn exhausted_budget_disables_retries_but_not_the_pipeline() {
        let build = |budget: Option<EnrichBudget>| {
            let (client, events) = setup_with(|cfg| cfg.transient_fault_prob = 0.3);
            let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
            let mut enricher = Enricher::with_retry(
                &client,
                client.world().config.cutoff_day,
                RetryPolicy { max_attempts: 12, ..RetryPolicy::default() },
            );
            if let Some(b) = budget {
                enricher = enricher.with_budget(b);
                assert!(enricher.order_dependent(), "budgeted enrichment is order-dependent");
            }
            let mut total = IngestStats::default();
            for e in events.iter().take(20) {
                total.absorb(&enricher.ingest(&mut tkg, e));
            }
            (tkg, total, enricher.budget_exhausted())
        };
        let (full_tkg, full, unexhausted) = build(None);
        assert!(!unexhausted, "no budget can never exhaust");
        assert_eq!(full.missed_transient, 0, "12 attempts did not absorb p=0.3");
        // A one-attempt budget degrades every query after the first to
        // single-attempt mode: far fewer retries, transient misses
        // appear, but the pipeline still builds a (smaller) graph.
        let (tiny_tkg, tiny, exhausted) =
            build(Some(EnrichBudget { max_attempts: 1, max_backoff_ms: u64::MAX }));
        assert!(exhausted);
        assert!(tiny.retried < full.retried);
        assert!(tiny.missed_transient > 0, "degraded mode missed nothing at p=0.3");
        assert!(tiny.degradation() > 0.0);
        assert!(tiny_tkg.graph.node_count() > 0);
        assert!(tiny_tkg.graph.edge_count() <= full_tkg.graph.edge_count());
    }

    #[test]
    fn degradation_score_is_a_query_weighted_ratio() {
        let s = IngestStats {
            first_order: 6,
            secondary: 2,
            missed_transient: 1,
            breaker_rejected: 1,
            ..IngestStats::default()
        };
        assert!((s.degradation() - 0.25).abs() < 1e-12);
        assert_eq!(IngestStats::default().degradation(), 0.0);
        let json = s.to_json();
        assert_eq!(json["breaker_rejected"].as_u64(), Some(1));
    }

    #[test]
    fn record_then_replay_reproduces_the_live_ingest_exactly() {
        // The shard-equivalence contract at its smallest: record every
        // query into a map on one pass, replay the same events through
        // the map on a fresh TKG, and demand identical graphs and stats.
        let (client, events) = setup_with(|cfg| cfg.transient_fault_prob = 0.25);
        let cutoff = client.world().config.cutoff_day;
        let n = events.len().min(25);

        let mut live_tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let live_enricher = Enricher::new(&client, cutoff);
        assert!(!live_enricher.order_dependent());
        let mut live_total = IngestStats::default();
        for e in events.iter().take(n) {
            live_total.absorb(&live_enricher.ingest(&mut live_tkg, e));
        }

        let mut map = QueryMap::default();
        {
            let mut scratch = Tkg::new(AptRegistry::new(client.world().config.n_apts));
            let rec_enricher = Enricher::new(&client, cutoff);
            let mut log = QueryLog::Record(&mut map);
            for e in events.iter().take(n) {
                rec_enricher.ingest_logged(&mut scratch, e, &mut log);
            }
        }
        assert!(map.len() > 0, "recording pass memoised nothing");

        let mut replay_tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let replay_enricher = Enricher::new(&client, cutoff);
        let mut replay_total = IngestStats::default();
        {
            let mut log = QueryLog::Replay(&map);
            for e in events.iter().take(n) {
                replay_total
                    .absorb(&replay_enricher.ingest_logged(&mut replay_tkg, e, &mut log));
            }
        }
        assert_eq!(replay_total, live_total, "stats taxonomy diverged under replay");
        assert_eq!(replay_tkg.graph.node_count(), live_tkg.graph.node_count());
        assert_eq!(replay_tkg.graph.edge_count(), live_tkg.graph.edge_count());
        let live_bytes = trail_graph::persist::to_bytes(&live_tkg.graph);
        let replay_bytes = trail_graph::persist::to_bytes(&replay_tkg.graph);
        assert_eq!(live_bytes, replay_bytes, "snapshots not bitwise-identical");
    }
}
