//! The in-process request runtime: admission control, generation-
//! stamped hot-swappable bundles, per-generation model replicas, and
//! per-request observability.
//!
//! Concurrency model: every installed bundle lives inside a
//! [`Generation`] — the bundle `Arc`, a replica pool instantiated
//! *from that bundle*, and a per-generation completion counter. The
//! runtime holds the current generation behind a `Mutex<Arc<..>>`
//! slot (std-only arc-swap: lock, clone, unlock — the lock is held
//! for a pointer clone, never across scoring). A request **pins** one
//! generation up front and uses it end to end, so a query can never
//! observe generation N's replicas with generation N+1's graph, and
//! in-flight queries complete on the generation they started on while
//! [`ServeRuntime::install`] publishes the next one. Rankings are a
//! pure function of `(generation, query)`.
//!
//! Replica pools are keyed by generation — they live *inside* the
//! `Generation` — which is what makes a swap safe: the old pool drains
//! with its in-flight queries and is freed when the last pinned `Arc`
//! drops; the new pool was built from the new bundle before the slot
//! flipped.
//!
//! Admission reuses the PR 4 [`CircuitBreaker`]: every request asks
//! `admit()` first; poisoned/failed requests `record_fault()`, so a
//! burst of bad queries trips the breaker and subsequent requests are
//! shed without touching the graph, then probed back to Closed.
//!
//! Counter discipline (the reconciliation invariant the tests pin):
//! `serve.issued == serve.admitted + serve.rejected` and
//! `serve.admitted == serve.completed + serve.failed`, exactly, for
//! any interleaving — each request increments exactly one branch at
//! each level of that tree. Swaps add two more ledgers:
//! `serve.swaps` counts installs after the initial bundle, and the
//! per-generation completion counts (kept after a generation retires)
//! sum to `serve.completed` exactly, across any number of swaps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use trail_gnn::SageModel;
use trail_ioc::IocKey;
use trail_osint::CircuitBreaker;

use crate::bundle::{Attribution, QueryLimits, ServeBundle};

/// One attribution request: the IOCs observed in a fresh incident.
#[derive(Debug, Clone)]
pub struct Query {
    /// Canonical IOC identities to look up.
    pub iocs: Vec<IocKey>,
    /// Fault injection for drills: the request is admitted, then fails
    /// inside the handler (standing in for unparseable/poison input).
    pub poison: bool,
}

impl Query {
    /// A well-formed query.
    pub fn new(iocs: Vec<IocKey>) -> Self {
        Self { iocs, poison: false }
    }

    /// A request that will fault after admission.
    pub fn poison() -> Self {
        Self { iocs: Vec::new(), poison: true }
    }
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Scored: the APT ranking.
    Ranked(Attribution),
    /// Shed by the circuit breaker before touching the graph.
    Rejected,
    /// Admitted but failed in the handler.
    Failed(&'static str),
}

/// One request's result plus its wall-clock latency and the bundle
/// generation that served it.
#[derive(Debug, Clone)]
pub struct Response {
    /// What happened.
    pub outcome: Outcome,
    /// End-to-end handler latency in microseconds.
    pub latency_us: u64,
    /// The generation pinned for this request. Stamped on *every*
    /// outcome — rejected requests too — so a swap boundary is visible
    /// in the response stream itself.
    pub generation: u64,
}

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Model replicas to instantiate per generation (size to the
    /// widest worker count the runtime will be driven with).
    pub replicas: usize,
    /// Per-query traversal limits.
    pub limits: QueryLimits,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { replicas: trail_linalg::pool::num_threads().max(2), limits: QueryLimits::default() }
    }
}

/// One installed bundle and everything derived from it. Immutable
/// after construction except the replica scratch state and the
/// completion counter; freed when the slot has moved on *and* the last
/// in-flight request drops its pin.
struct Generation {
    /// Monotonic install index, 0 for the construction-time bundle.
    gen: u64,
    bundle: Arc<ServeBundle>,
    /// Replicas instantiated from *this* bundle's weights — keying the
    /// pool by generation is what prevents a stale replica (old
    /// weights) from scoring against a new graph after a swap.
    replicas: Vec<Mutex<SageModel>>,
    /// Completions on this generation. Shared with the runtime's
    /// stats ledger so the count survives the generation's retirement.
    completed: Arc<AtomicU64>,
}

impl Generation {
    fn build(gen: u64, bundle: Arc<ServeBundle>, replicas: usize) -> Self {
        let replicas =
            (0..replicas.max(1)).map(|_| Mutex::new(bundle.instantiate_model())).collect();
        Self { gen, bundle, replicas, completed: Arc::new(AtomicU64::new(0)) }
    }

    /// Run `f` with an exclusive model replica of this generation.
    /// With at least as many replicas as concurrent callers one pass
    /// always finds a free slot; the yield loop covers transient
    /// oversubscription.
    fn with_replica<T>(&self, f: impl FnOnce(&mut SageModel) -> T) -> T {
        let mut f = Some(f);
        loop {
            for slot in &self.replicas {
                if let Ok(mut model) = slot.try_lock() {
                    return (f.take().expect("single use"))(&mut model);
                }
            }
            std::thread::yield_now();
        }
    }
}

/// The concurrent, read-only serving runtime with zero-downtime bundle
/// hot swap.
pub struct ServeRuntime {
    /// The generation slot. Locked only to clone the `Arc` out (pin)
    /// or store a new one (install) — never across scoring.
    current: Mutex<Arc<Generation>>,
    breaker: Arc<CircuitBreaker>,
    limits: QueryLimits,
    replica_count: usize,
    /// `(generation, completions)` for every generation ever
    /// installed, in install order. Entries share the `Arc` with the
    /// live generation, so the ledger keeps counting while the
    /// generation drains and keeps the total after it is freed.
    stats: Mutex<Vec<(u64, Arc<AtomicU64>)>>,
}

impl ServeRuntime {
    /// Build a runtime over a frozen bundle (generation 0).
    pub fn new(bundle: Arc<ServeBundle>, breaker: Arc<CircuitBreaker>, cfg: RuntimeConfig) -> Self {
        let g = Generation::build(0, bundle, cfg.replicas);
        let stats = Mutex::new(vec![(0, g.completed.clone())]);
        Self {
            current: Mutex::new(Arc::new(g)),
            breaker,
            limits: cfg.limits,
            replica_count: cfg.replicas.max(1),
            stats,
        }
    }

    /// Atomically install a new bundle as the next generation and
    /// return its generation number. The incoming generation's replica
    /// pool is fully built *before* the slot flips, so no request can
    /// ever pin a generation whose replicas do not match its bundle.
    /// In-flight requests keep serving their pinned generation; new
    /// requests observe the new one. Bumps `serve.swaps`.
    pub fn install(&self, bundle: Arc<ServeBundle>) -> u64 {
        let _span = trail_obs::span("serve.swap");
        let next = self.current.lock().expect("generation slot").gen + 1;
        // Build outside the lock: instantiation is the expensive part
        // and must not block readers.
        let g = Arc::new(Generation::build(next, bundle, self.replica_count));
        self.stats.lock().expect("stats ledger").push((next, g.completed.clone()));
        *self.current.lock().expect("generation slot") = g;
        trail_obs::counter_add("serve.swaps", 1);
        next
    }

    /// Pin the current generation: one short lock, one `Arc` clone.
    fn pin(&self) -> Arc<Generation> {
        self.current.lock().expect("generation slot").clone()
    }

    /// The currently installed bundle (a pinned `Arc`, stable even if
    /// a swap lands immediately after the call returns).
    pub fn bundle(&self) -> Arc<ServeBundle> {
        self.pin().bundle.clone()
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.pin().gen
    }

    /// Completions per generation, in install order, including retired
    /// generations. The per-generation half of the swap
    /// reconciliation: the sum equals `serve.completed` exactly.
    pub fn generation_stats(&self) -> Vec<(u64, u64)> {
        self.stats
            .lock()
            .expect("stats ledger")
            .iter()
            .map(|(g, c)| (*g, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// The admission breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Handle one request end to end: pin a generation, admission,
    /// scoring, outcome accounting, latency histogram. The pinned
    /// generation is the *only* bundle/replica state the request ever
    /// touches.
    pub fn handle(&self, query: &Query) -> Response {
        let start = Instant::now();
        // Pin before admission so every response — rejected ones
        // included — names the generation that judged it.
        let gen = self.pin();
        trail_obs::counter_add("serve.issued", 1);
        let outcome = if !self.breaker.admit() {
            trail_obs::counter_add("serve.rejected", 1);
            Outcome::Rejected
        } else {
            trail_obs::counter_add("serve.admitted", 1);
            if query.poison {
                self.breaker.record_fault();
                trail_obs::counter_add("serve.failed", 1);
                Outcome::Failed("poison query")
            } else {
                let attribution = gen
                    .with_replica(|model| gen.bundle.attribute(model, &query.iocs, &self.limits));
                self.breaker.record_success();
                trail_obs::counter_add("serve.completed", 1);
                gen.completed.fetch_add(1, Ordering::Relaxed);
                Outcome::Ranked(attribution)
            }
        };
        let latency_us = start.elapsed().as_micros() as u64;
        trail_obs::observe("serve.latency_us", trail_obs::bounds::SERVE_LATENCY_US, latency_us);
        Response { outcome, latency_us, generation: gen.gen }
    }

    /// Serve a whole batch at a fixed worker-pool width, preserving
    /// input order in the output.
    pub fn run_batch(&self, queries: &[Query], concurrency: usize) -> Vec<Response> {
        let _span = trail_obs::span("serve.batch");
        trail_linalg::pool::parallel_map_limit(concurrency.max(1), queries.len(), |i| {
            self.handle(&queries[i])
        })
    }
}
