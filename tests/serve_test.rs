//! End-to-end serving integration: freeze a trained bundle from a
//! tiny world, replay one seeded query mix from 1 and 8 worker
//! threads against one shared `ServeBundle`, and require bitwise
//! identical rankings plus exact `trail-obs` counter reconciliation —
//! including through a poison-query breaker drill.
//!
//! Everything lives in one `#[test]` because the serve counters are
//! process-global: concurrent tests issuing requests would tear each
//! other's reconciliation windows.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use trail::attribute::GnnEvalConfig;
use trail::freeze;
use trail::system::TrailSystem;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{BreakerConfig, CircuitBreaker, OsintClient, World, WorldConfig};
use trail_serve::{loadgen, LoadMix, QueryLimits, RuntimeConfig, ServeBundle, ServeRuntime};

fn build(seed: u64) -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(seed))));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

#[test]
fn concurrent_serving_is_deterministic_and_counters_reconcile() {
    let sys = build(910);
    let mut rng = StdRng::seed_from_u64(9);
    let ae = AutoencoderConfig { hidden: 32, code: 8, epochs: 1, batch_size: 64, lr: 1e-3 };
    let gnn = GnnEvalConfig {
        hidden: 16,
        train: trail_gnn::TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
        val_fraction: 0.1,
        l2_normalize: true,
        label_visible_fraction: 0.7,
        sampled_neighbor_cap: None,
    };
    let frozen = freeze::train_frozen(&mut rng, &sys.tkg, &ae, &gnn, 2);
    let bundle = ServeBundle::freeze(&sys.tkg, &frozen).expect("freeze");

    // Serve from the disk-loaded copy, proving the benched path
    // (save → load → serve) preserves the frozen state bit for bit.
    let dir = std::env::temp_dir().join(format!("trail-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bundle.tsb");
    bundle.save(&path).expect("save");
    let loaded = ServeBundle::load(&path).expect("load");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(bundle.to_bytes(), loaded.to_bytes(), "disk round-trip must be bitwise");

    let shared = Arc::new(loaded);
    let runtime = ServeRuntime::new(
        Arc::clone(&shared),
        Arc::new(CircuitBreaker::new(BreakerConfig::default())),
        RuntimeConfig { replicas: 8, limits: QueryLimits::default() },
    );
    let mix = LoadMix {
        queries: 48,
        iocs_per_query: 6,
        unknown_fraction: 0.25,
        poison_fraction: 0.0,
        seed: 0xfeed,
    };
    let queries = loadgen::generate(&runtime, &mix);

    // N identical queries from 1 thread vs 8 threads, same bundle:
    // identical rankings, and the obs counters match the issued/
    // admitted/rejected totals exactly at both widths.
    let single = loadgen::run_level(&runtime, &queries, 1);
    let wide = loadgen::run_level(&runtime, &queries, 8);
    assert!(single.counters_reconciled, "1-thread counters must reconcile");
    assert!(wide.counters_reconciled, "8-thread counters must reconcile");
    assert_eq!(single.fingerprint, wide.fingerprint, "rankings depend on worker count");
    assert_eq!(single.completed, queries.len() as u64);
    assert_eq!(wide.rejected, 0, "healthy runtime must not shed");

    // Response-by-response, not just the digest.
    let r1 = runtime.run_batch(&queries, 1);
    let r8 = runtime.run_batch(&queries, 8);
    assert_eq!(r1.len(), r8.len());
    for (a, b) in r1.iter().zip(&r8) {
        assert_eq!(a.outcome, b.outcome);
    }

    // Breaker drill: hair-trigger breaker plus poison queries. The
    // rejection pattern is scheduling-dependent, but the counter tree
    // must still reconcile exactly for any interleaving.
    let drill_rt = ServeRuntime::new(
        shared,
        Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_rejections: 2,
            half_open_successes: 1,
        })),
        RuntimeConfig { replicas: 8, limits: QueryLimits::default() },
    );
    let drill_mix = LoadMix { queries: 40, poison_fraction: 0.25, seed: 0xdead, ..mix };
    let drill_queries = loadgen::generate(&drill_rt, &drill_mix);
    let drill = loadgen::run_level(&drill_rt, &drill_queries, 8);
    assert!(drill.counters_reconciled, "drill counters must reconcile");
    assert!(drill.failed > 0, "poison queries must fault");
    assert!(drill.rejected > 0, "tripped breaker must shed load");
    assert!(drill.completed > 0, "breaker must recover and serve again");
    assert_eq!(drill.issued, drill.admitted + drill.rejected);
    assert_eq!(drill.admitted, drill.completed + drill.failed);
}
