//! Circuit breaker for the OSINT query path.
//!
//! Real enrichment feeds fail in bursts: a rate-limit storm or an
//! upstream outage makes *every* attempt fail for a while, and naive
//! per-query retries multiply the load exactly when the feed is least
//! able to serve it. The standard remedy is a circuit breaker
//! (Closed → Open → Half-Open) that sheds load after a run of faults
//! and probes cautiously before trusting the feed again.
//!
//! This implementation is **time-free**: the reproduction pipeline is
//! deterministic end-to-end, so instead of a wall-clock cooldown the
//! Open state counts *rejected admissions* and transitions to Half-Open
//! after a fixed number of them. The same query stream therefore drives
//! the same state trajectory on every run, which is what lets the chaos
//! harness assert exact fault/degradation accounting.
//!
//! State machine:
//!
//! * **Closed** — all queries admitted. `failure_threshold` consecutive
//!   faults trip the breaker to Open (a success resets the run).
//! * **Open** — every admission is rejected (counted under
//!   `osint.breaker.rejected`). After `cooldown_rejections` rejections
//!   the breaker moves to Half-Open; the transitioning call itself is
//!   still rejected, so the *next* query is the first probe.
//! * **Half-Open** — queries admitted as probes. `half_open_successes`
//!   consecutive successes close the breaker; any fault re-opens it.

use std::sync::Mutex;

/// Breaker thresholds. All counts, no clocks — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults (while Closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Rejections served while Open before moving to Half-Open.
    pub cooldown_rejections: u32,
    /// Consecutive probe successes (while Half-Open) that re-close.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown_rejections: 8, half_open_successes: 2 }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; queries flow.
    Closed,
    /// Shedding load; queries rejected without touching the feed.
    Open,
    /// Probing; queries flow but one fault re-opens.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Consecutive faults observed while Closed.
    consecutive_faults: u32,
    /// Rejections served while Open.
    rejections: u32,
    /// Consecutive successes observed while Half-Open.
    probe_successes: u32,
}

/// A deterministic, thread-safe circuit breaker.
///
/// Shared by every clone of an [`crate::OsintClient`] via `Arc`, so
/// concurrent enrichment workers observe one joint view of feed health.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Breaker in the Closed state.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_faults: 0,
                rejections: 0,
                probe_successes: 0,
            }),
        }
    }

    /// The configuration this breaker runs with.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Current state (diagnostics only — racy by nature under
    /// concurrency, exact under the deterministic single-threaded
    /// enrichment loop).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// Ask to run a query. `true` admits it; `false` means the caller
    /// must fail fast without touching the feed. While Open, each
    /// rejection counts toward the cooldown; the call that exhausts the
    /// cooldown flips to Half-Open but is itself still rejected.
    pub fn admit(&self) -> bool {
        let mut g = self.inner.lock().expect("breaker lock");
        match g.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                g.rejections += 1;
                trail_obs::counter_add("osint.breaker.rejected", 1);
                if g.rejections >= self.cfg.cooldown_rejections {
                    g.state = BreakerState::HalfOpen;
                    g.probe_successes = 0;
                    trail_obs::counter_add("osint.breaker.half_open", 1);
                }
                false
            }
        }
    }

    /// Report that an admitted query completed without a transient
    /// fault (a permanent gap still counts: the feed *answered*).
    pub fn record_success(&self) {
        let mut g = self.inner.lock().expect("breaker lock");
        match g.state {
            BreakerState::Closed => g.consecutive_faults = 0,
            BreakerState::HalfOpen => {
                g.probe_successes += 1;
                if g.probe_successes >= self.cfg.half_open_successes {
                    g.state = BreakerState::Closed;
                    g.consecutive_faults = 0;
                    trail_obs::counter_add("osint.breaker.closed", 1);
                }
            }
            // A success can race in after the breaker opened; ignore.
            BreakerState::Open => {}
        }
    }

    /// Report that an admitted query failed transiently.
    pub fn record_fault(&self) {
        let mut g = self.inner.lock().expect("breaker lock");
        match g.state {
            BreakerState::Closed => {
                g.consecutive_faults += 1;
                if g.consecutive_faults >= self.cfg.failure_threshold {
                    Self::open(&mut g);
                }
            }
            BreakerState::HalfOpen => Self::open(&mut g),
            BreakerState::Open => {}
        }
    }

    fn open(g: &mut Inner) {
        g.state = BreakerState::Open;
        g.rejections = 0;
        g.probe_successes = 0;
        trail_obs::counter_add("osint.breaker.opened", 1);
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, cooldown_rejections: 4, half_open_successes: 2 }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..2 {
            assert!(b.admit());
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // A success resets the consecutive-fault run.
        b.record_success();
        for _ in 0..2 {
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_open_at_threshold_and_rejects() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            assert!(b.admit());
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_rejections_move_to_half_open() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_fault();
        }
        // 4 rejections serve the cooldown; the 4th flips to Half-Open
        // but is itself rejected.
        for _ in 0..4 {
            assert!(!b.admit());
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit());
    }

    #[test]
    fn probe_successes_reclose() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_fault();
        }
        for _ in 0..4 {
            b.admit();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn probe_fault_reopens_and_restarts_cooldown() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_fault();
        }
        for _ in 0..4 {
            b.admit();
        }
        b.record_success();
        b.record_fault(); // probe fails → back to Open
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown starts over: 4 fresh rejections needed.
        for _ in 0..3 {
            assert!(!b.admit());
            assert_eq!(b.state(), BreakerState::Open);
        }
        assert!(!b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn default_config_matches_docs() {
        let d = BreakerConfig::default();
        assert_eq!(d.failure_threshold, 5);
        assert_eq!(d.cooldown_rejections, 8);
        assert_eq!(d.half_open_successes, 2);
    }
}
