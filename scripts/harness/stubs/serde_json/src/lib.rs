//! Offline stand-in for `serde_json`, covering the `Value`/`Map`/`json!`
//! surface the workspace actually uses (hand-built JSON trees serialized
//! with `to_string`/`to_string_pretty`; no typed deserialization).

use std::collections::BTreeMap;
use std::fmt;

/// JSON object map. Like upstream's default (no `preserve_order`), keys
/// iterate in sorted order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Self { inner: BTreeMap::new() }
    }

    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.inner.insert(k, v)
    }

    pub fn get(&self, k: &str) -> Option<&Value> {
        self.inner.get(k)
    }

    pub fn contains_key(&self, k: &str) -> bool {
        self.inner.contains_key(k)
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Self { inner: iter.into_iter().collect() }
    }
}

/// JSON number: unsigned, signed or floating, like upstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum N {
    U(u64),
    I(i64),
    F(f64),
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    n: N,
}

impl Number {
    pub fn from_f64(f: f64) -> Option<Self> {
        f.is_finite().then_some(Self { n: N::F(f) })
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::U(u) => Some(u),
            N::I(i) => u64::try_from(i).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::U(u) => i64::try_from(u).ok(),
            N::I(i) => Some(i),
            N::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::U(u) => Some(u as f64),
            N::I(i) => Some(i as f64),
            N::F(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::U(u) => write!(f, "{u}"),
            N::I(i) => write!(f, "{i}"),
            N::F(x) => {
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, k: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(k))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, k: &str) -> &Value {
        self.get(k).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number { n: N::U(v as u64) }) }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number { n: N::I(v as i64) }) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

// `json["k"] == 8` style comparisons (upstream's PartialEq shims).
macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(u8, u16, u32, i8, i16, i32, i64, usize);
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, None, 0);
        f.write_str(&s)
    }
}

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

/// Serialize a hand-built [`Value`] compactly. (The stub only accepts
/// `Value` — the workspace never serializes derived types directly.)
pub fn to_string(v: &Value) -> Result<String, Error> {
    Ok(v.to_string())
}

/// Serialize a hand-built [`Value`] with 2-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, v, Some(2), 0);
    Ok(s)
}

/// Build a [`Value`] literal. Supports nested objects/arrays, `null`,
/// and arbitrary `Into<Value>` expressions — the subset the repo uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}
