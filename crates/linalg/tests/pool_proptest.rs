//! Property tests for the shared worker pool's chunking: for any
//! (length, thread count, chunk size) — including the empty region,
//! fewer items than threads, and far more items than threads — every
//! index is dispatched exactly once and row bands tile the buffer.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use trail_linalg::pool;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_index_visited_exactly_once(
        len in 0usize..5000,
        threads in 1usize..16,
        min_chunk in 1usize..64,
    ) {
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool::parallel_for_limit(threads, len, min_chunk, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn row_bands_tile_the_buffer(
        rows in 0usize..200,
        cols in 1usize..16,
        threads in 1usize..16,
        min_rows in 1usize..32,
    ) {
        let mut data = vec![0u32; rows * cols];
        pool::parallel_for_rows_limit(threads, &mut data, cols, min_rows, |first, band| {
            assert_eq!(band.len() % cols, 0, "band covers whole rows");
            for (j, v) in band.iter_mut().enumerate() {
                *v = (first * cols + j) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn map_matches_sequential(len in 0usize..600, threads in 1usize..16) {
        let out = pool::parallel_map_limit(threads, len, |i| i * 3 + 1);
        prop_assert_eq!(out, (0..len).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }
}
