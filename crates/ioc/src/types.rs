//! The IOC sum type and kind auto-detection.

use serde::{Deserialize, Serialize};

use crate::domain::DomainIoc;
use crate::ip::IpIoc;
use crate::url::UrlIoc;
use crate::{IocError, Result};

/// The three network-IOC kinds the paper studies (plus ASN, which only
/// appears as a derived node, never as a reported IOC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IocKind {
    /// IP address.
    Ip,
    /// Full URL.
    Url,
    /// Domain name.
    Domain,
}

impl IocKind {
    /// All reportable kinds.
    pub const ALL: [IocKind; 3] = [IocKind::Ip, IocKind::Url, IocKind::Domain];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IocKind::Ip => "IP",
            IocKind::Url => "URL",
            IocKind::Domain => "Domain",
        }
    }
}

/// A validated network IOC.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ioc {
    /// IP address.
    Ip(IpIoc),
    /// URL.
    Url(UrlIoc),
    /// Domain.
    Domain(DomainIoc),
}

impl Ioc {
    /// Parse text with a declared kind (as incident reports provide).
    pub fn parse_as(kind: IocKind, raw: &str) -> Result<Self> {
        match kind {
            IocKind::Ip => IpIoc::parse(raw).map(Ioc::Ip),
            IocKind::Url => UrlIoc::parse(raw).map(Ioc::Url),
            IocKind::Domain => DomainIoc::parse(raw).map(Ioc::Domain),
        }
    }

    /// Auto-detect the kind: URL if it has a scheme, IP if it parses as
    /// one, else domain.
    pub fn detect(raw: &str) -> Result<Self> {
        let refanged = crate::defang::refang(raw);
        if refanged.contains("://") {
            return UrlIoc::parse(raw).map(Ioc::Url);
        }
        if let Ok(ip) = IpIoc::parse(raw) {
            return Ok(Ioc::Ip(ip));
        }
        if let Ok(d) = DomainIoc::parse(raw) {
            return Ok(Ioc::Domain(d));
        }
        Err(IocError::invalid("ioc", raw, "matches no known IOC kind"))
    }

    /// The kind of this IOC.
    pub fn kind(&self) -> IocKind {
        match self {
            Ioc::Ip(_) => IocKind::Ip,
            Ioc::Url(_) => IocKind::Url,
            Ioc::Domain(_) => IocKind::Domain,
        }
    }

    /// Canonical text.
    pub fn text(&self) -> &str {
        match self {
            Ioc::Ip(x) => &x.text,
            Ioc::Url(x) => &x.text,
            Ioc::Domain(x) => &x.text,
        }
    }

    /// The canonical identity of this IOC (see [`crate::key::IocKey`]).
    pub fn key(&self) -> crate::key::IocKey {
        crate::key::IocKey::of(self)
    }

    /// The zero-copy identity of this IOC — no allocation, same
    /// canonical-by-construction guarantee as [`Self::key`].
    pub fn key_ref(&self) -> crate::key::IocKeyRef<'_> {
        crate::key::IocKeyRef::new(self.kind(), self.text())
    }

    /// Consume the IOC, yielding its canonical text.
    pub fn into_text(self) -> String {
        match self {
            Ioc::Ip(x) => x.text,
            Ioc::Url(x) => x.text,
            Ioc::Domain(x) => x.text,
        }
    }
}

impl std::fmt::Display for Ioc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_kinds() {
        assert_eq!(Ioc::detect("1.2.3.4").unwrap().kind(), IocKind::Ip);
        assert_eq!(Ioc::detect("hxxp://a[.]example/x").unwrap().kind(), IocKind::Url);
        assert_eq!(Ioc::detect("a.example").unwrap().kind(), IocKind::Domain);
        assert!(Ioc::detect("???").is_err());
    }

    #[test]
    fn parse_as_enforces_kind() {
        assert!(Ioc::parse_as(IocKind::Ip, "a.example").is_err());
        assert!(Ioc::parse_as(IocKind::Domain, "a.example").is_ok());
    }

    #[test]
    fn url_detection_wins_over_domain() {
        // A scheme means URL even though the host alone is a valid domain.
        let ioc = Ioc::detect("http://a.example").unwrap();
        assert_eq!(ioc.kind(), IocKind::Url);
        assert_eq!(ioc.text(), "http://a.example/");
    }
}
