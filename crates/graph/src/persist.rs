//! Snapshot persistence: a length-framed JSON encoding of the store.
//!
//! The frame is `b"TKG1"` + u64-LE payload length + JSON payload, which
//! lets snapshots be embedded in larger archives and validated cheaply.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::store::GraphStore;
use crate::{GraphError, Result};

const MAGIC: &[u8; 4] = b"TKG1";

/// Serialise a graph into a framed snapshot.
pub fn to_bytes(g: &GraphStore) -> Result<Bytes> {
    let payload =
        serde_json::to_vec(g).map_err(|e| GraphError::Persist(format!("encode: {e}")))?;
    let mut buf = BytesMut::with_capacity(payload.len() + 12);
    buf.put_slice(MAGIC);
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(&payload);
    Ok(buf.freeze())
}

/// Deserialise a framed snapshot, rebuilding lookup indices.
pub fn from_bytes(mut data: Bytes) -> Result<GraphStore> {
    if data.len() < 12 {
        return Err(GraphError::Persist("snapshot too short".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Persist("bad magic".into()));
    }
    let len = data.get_u64_le() as usize;
    if data.len() < len {
        return Err(GraphError::Persist(format!(
            "truncated snapshot: want {len}, have {}",
            data.len()
        )));
    }
    let mut g: GraphStore = serde_json::from_slice(&data[..len])
        .map_err(|e| GraphError::Persist(format!("decode: {e}")))?;
    g.rebuild_indices();
    Ok(g)
}

/// Write a snapshot to a file.
pub fn save(g: &GraphStore, path: &std::path::Path) -> Result<()> {
    let bytes = to_bytes(g)?;
    std::fs::write(path, &bytes).map_err(|e| GraphError::Persist(format!("write: {e}")))
}

/// Load a snapshot from a file.
pub fn load(path: &std::path::Path) -> Result<GraphStore> {
    let data = std::fs::read(path).map_err(|e| GraphError::Persist(format!("read: {e}")))?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LabelId;
    use crate::schema::{EdgeKind, NodeKind};

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "evt");
        let ip = g.upsert_node(NodeKind::Ip, "1.2.3.4");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.set_label(e, LabelId(5)).unwrap();
        g.mark_first_order(ip);
        g
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = to_bytes(&g).unwrap();
        let g2 = from_bytes(bytes).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        let e = g2.find_node(NodeKind::Event, "evt").unwrap();
        assert_eq!(g2.node(e).label, Some(LabelId(5)));
        let ip = g2.find_node(NodeKind::Ip, "1.2.3.4").unwrap();
        assert!(g2.node(ip).first_order);
        assert_eq!(g2.out_neighbors(e), &[(ip, EdgeKind::InReport)]);
    }

    #[test]
    fn rejects_corrupt_frames() {
        assert!(from_bytes(Bytes::from_static(b"short")).is_err());
        assert!(from_bytes(Bytes::from_static(b"XXXX\0\0\0\0\0\0\0\0")).is_err());
        let mut bytes = to_bytes(&sample()).unwrap().to_vec();
        bytes.truncate(bytes.len() - 4);
        assert!(from_bytes(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("trail_graph_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tkg");
        save(&sample(), &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(g2.node_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
