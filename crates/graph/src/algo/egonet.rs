//! Ego-net extraction (paper Figure 3, Figures 5–6).
//!
//! The paper views each incident report as an ego-net: the event is the
//! ego and the reported IOCs are the alters; enrichment then expands the
//! net with secondary IOCs and alter–alter edges.

use crate::csr::Csr;
use crate::ids::NodeId;
use crate::schema::NodeKind;
use crate::store::GraphStore;

/// An extracted ego network: the ego, all nodes within `radius` hops,
/// and the induced edge list among them.
#[derive(Debug, Clone)]
pub struct EgoNet {
    /// The focal node.
    pub ego: NodeId,
    /// `(node, hop-distance)` for every member, ego first.
    pub members: Vec<(NodeId, u32)>,
    /// Induced edges among members as `(src, dst)` pairs (directed as stored).
    pub edges: Vec<(NodeId, NodeId)>,
}

impl EgoNet {
    /// Member count per node kind, indexed by [`NodeKind::index`].
    pub fn kind_counts(&self, g: &GraphStore) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for &(id, _) in &self.members {
            counts[g.node(id).kind.index()] += 1;
        }
        counts
    }

    /// Members of a given kind.
    pub fn members_of_kind(&self, g: &GraphStore, kind: NodeKind) -> Vec<NodeId> {
        self.members.iter().filter(|&&(id, _)| g.node(id).kind == kind).map(|&(id, _)| id).collect()
    }
}

/// Extract the ego-net of `ego` with the given hop radius.
pub fn ego_net(g: &GraphStore, csr: &Csr, ego: NodeId, radius: u32) -> EgoNet {
    let _span = trail_obs::span("graph.ego_net");
    let members = super::bfs::k_hop(csr, &[ego], radius);
    let mut in_net = vec![false; g.node_count()];
    for &(id, _) in &members {
        in_net[id.index()] = true;
    }
    let mut edges = Vec::new();
    for e in g.edges() {
        if in_net[e.src.index()] && in_net[e.dst.index()] {
            edges.push((e.src, e.dst));
        }
    }
    EgoNet { ego, members, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::EdgeKind;

    #[test]
    fn egonet_counts_and_induced_edges() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = g.upsert_node(NodeKind::Domain, "a.example");
        let d_far = g.upsert_node(NodeKind::Domain, "far.example");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap(); // alter-alter edge
        g.add_edge(ip, d_far, EdgeKind::ARecord).unwrap(); // 2 hops from ego

        let csr = Csr::from_store(&g);
        let net1 = ego_net(&g, &csr, e, 1);
        assert_eq!(net1.members.len(), 3);
        // The induced subgraph keeps the alter-alter A-record edge.
        assert_eq!(net1.edges.len(), 3);
        let counts = net1.kind_counts(&g);
        assert_eq!(counts[NodeKind::Ip.index()], 1);
        assert_eq!(counts[NodeKind::Domain.index()], 1);

        let net2 = ego_net(&g, &csr, e, 2);
        assert_eq!(net2.members.len(), 4);
        assert_eq!(net2.edges.len(), 4);
        assert_eq!(net2.members_of_kind(&g, NodeKind::Domain).len(), 2);
    }
}
