//! Sampled GNN training contract: the opt-in `--sampled` mode trains
//! on capped neighbourhood subgraphs (mini-batch GraphSAGE) and must
//! stay epsilon-close to the full-graph protocol on a trained fixture.
//! This is the agreement gate behind `GnnEvalConfig::sampled_neighbor_cap`
//! — sampling is an approximation, so the contract is accuracy within a
//! tolerance plus strict determinism, not bitwise equality.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trail::attribute::{self, GnnEvalConfig};
use trail::embed::train_autoencoders;
use trail::system::TrailSystem;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{OsintClient, World, WorldConfig};

fn build(seed: u64) -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(seed))));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

fn cfg(sampled_neighbor_cap: Option<usize>) -> GnnEvalConfig {
    GnnEvalConfig {
        hidden: 16,
        train: trail_gnn::TrainConfig { lr: 0.02, epochs: 120, patience: 0 },
        val_fraction: 0.1,
        l2_normalize: false,
        label_visible_fraction: 0.6,
        sampled_neighbor_cap,
    }
}

/// The epsilon-accuracy contract: on the same trained fixture
/// (same world, same autoencoder embedding, same fold seed), sampled
/// training with a generous cap scores within 0.25 accuracy of the
/// full-graph protocol and clearly beats random.
#[test]
fn sampled_training_agrees_with_full_graph_within_epsilon() {
    let sys = build(903);
    let ae = AutoencoderConfig { hidden: 32, code: 8, epochs: 2, batch_size: 64, lr: 1e-3 };
    let (emb, _) = train_autoencoders(&mut StdRng::seed_from_u64(4), &sys.tkg, &ae);

    let full = attribute::eval_event_gnn(
        &mut StdRng::seed_from_u64(9),
        &sys.tkg,
        &emb,
        2,
        &cfg(None),
        2,
    )
    .acc_mean_std()
    .0;
    let sampled = attribute::eval_event_gnn(
        &mut StdRng::seed_from_u64(9),
        &sys.tkg,
        &emb,
        2,
        &cfg(Some(16)),
        2,
    )
    .acc_mean_std()
    .0;

    let random = 1.0 / sys.tkg.n_classes() as f64;
    assert!(sampled > random * 1.2, "sampled acc {sampled} vs random {random}");
    assert!(
        (full - sampled).abs() <= 0.25,
        "sampled ({sampled}) drifted more than epsilon from full-graph ({full})"
    );
}

/// Sampled evaluation is a pure function of the seed: two runs from
/// the same RNG state produce identical per-fold scores.
#[test]
fn sampled_training_is_reproducible_for_a_fixed_seed() {
    let sys = build(904);
    let ae = AutoencoderConfig { hidden: 32, code: 8, epochs: 1, batch_size: 64, lr: 1e-3 };
    let (emb, _) = train_autoencoders(&mut StdRng::seed_from_u64(5), &sys.tkg, &ae);
    let c = cfg(Some(8));
    let a = attribute::eval_event_gnn(&mut StdRng::seed_from_u64(6), &sys.tkg, &emb, 2, &c, 2);
    let b = attribute::eval_event_gnn(&mut StdRng::seed_from_u64(6), &sys.tkg, &emb, 2, &c, 2);
    assert_eq!(a.acc, b.acc);
    assert_eq!(a.bacc, b.bacc);
}

/// A tight cap restricts every expanded neighbourhood yet the pipeline
/// still completes and produces sane scores — the degenerate-subgraph
/// path (isolated supervised nodes, pruned bridges) must not panic.
#[test]
fn tightly_capped_sampling_completes() {
    let sys = build(905);
    let ae = AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 };
    let (emb, _) = train_autoencoders(&mut StdRng::seed_from_u64(7), &sys.tkg, &ae);
    let scores = attribute::eval_event_gnn(
        &mut StdRng::seed_from_u64(8),
        &sys.tkg,
        &emb,
        2,
        &cfg(Some(2)),
        2,
    );
    for acc in &scores.acc {
        assert!((0.0..=1.0).contains(acc));
    }
}
