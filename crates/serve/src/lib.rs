//! `trail-serve` — attribution-as-a-service over a frozen TKG.
//!
//! The batch pipeline (`repro`) builds a world, trains, and exits; the
//! paper's end goal is attributing *fresh* incidents against the
//! already-built knowledge graph. This crate is that online half:
//!
//! * [`bundle::ServeBundle`] — an immutable, checksummed snapshot of a
//!   trained system (graph + events + codes + SAGE weights) in the
//!   TSB1 frame format, written atomically like TKG2/TSC1 snapshots.
//! * [`runtime::ServeRuntime`] — a concurrent in-process request
//!   runtime on the shared worker pool: circuit-breaker admission,
//!   deterministic per-worker model replicas, per-request latency
//!   histograms and exactly-reconciling outcome counters.
//! * [`loadgen`] — a seeded deterministic load generator and per-level
//!   measurement for `repro serve-bench`.
//!
//! The serving invariant: the query path is strictly read-only against
//! the bundle, and rankings are a pure function of `(bundle, query)` —
//! independent of the worker count, the replica that served the
//! request, and any concurrent traffic. DESIGN.md §12 documents the
//! architecture.

pub mod bundle;
pub mod loadgen;
pub mod runtime;

pub use bundle::{Attribution, BundleEvent, QueryLimits, ServeBundle};
pub use loadgen::{LevelReport, LoadMix};
pub use runtime::{Outcome, Query, Response, RuntimeConfig, ServeRuntime};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;
    use trail::collector::AptRegistry;
    use trail::freeze::FrozenModel;
    use trail::Tkg;
    use trail_gnn::{SageConfig, SageModel};
    use trail_graph::{EdgeKind, NodeKind, PersistError};
    use trail_ioc::{IocKey, IocKind};
    use trail_linalg::Matrix;
    use trail_osint::{BreakerConfig, CircuitBreaker};

    /// A tiny hand-built TKG: two labelled events sharing IOCs, plus an
    /// unrelated third event, over 3 classes.
    fn tiny_tkg() -> Tkg {
        let mut tkg = Tkg::new(AptRegistry::new(3));
        let e0 = tkg.graph.upsert_node(NodeKind::Event, "r0");
        let e1 = tkg.graph.upsert_node(NodeKind::Event, "r1");
        let e2 = tkg.graph.upsert_node(NodeKind::Event, "r2");
        let ip = tkg.graph.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = tkg.graph.upsert_node(NodeKind::Domain, "apt.example");
        let ip2 = tkg.graph.upsert_node(NodeKind::Ip, "2.2.2.2");
        tkg.graph.add_edge(e0, ip, EdgeKind::InReport).unwrap();
        tkg.graph.add_edge(e1, ip, EdgeKind::InReport).unwrap();
        tkg.graph.add_edge(e1, d, EdgeKind::InReport).unwrap();
        tkg.graph.add_edge(e2, ip2, EdgeKind::InReport).unwrap();
        tkg.graph.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        tkg.add_event(e0, "r0", 1, 0);
        tkg.add_event(e1, "r1", 2, 0);
        tkg.add_event(e2, "r2", 3, 2);
        tkg
    }

    /// An (untrained but deterministic) frozen model fitting `tiny_tkg`.
    fn tiny_frozen(tkg: &Tkg) -> FrozenModel {
        let code_dim = 4;
        let n = tkg.graph.node_count();
        let mut codes = Matrix::zeros(n, code_dim);
        for i in 0..n {
            for j in 0..code_dim {
                codes.row_mut(i)[j] = (i * code_dim + j) as f32 * 0.01;
            }
        }
        let cfg = SageConfig::new(code_dim + 5 + tkg.n_classes(), 8, 2, tkg.n_classes());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let model = SageModel::new(&mut rng, cfg);
        let layers = model
            .weights()
            .iter()
            .map(|(r, n, b)| ((*r).clone(), (*n).clone(), (*b).clone()))
            .collect();
        FrozenModel { codes, code_dim, sage_cfg: cfg, layers }
    }

    fn tiny_bundle() -> ServeBundle {
        let tkg = tiny_tkg();
        let frozen = tiny_frozen(&tkg);
        ServeBundle::freeze(&tkg, &frozen).expect("valid bundle")
    }

    fn key(kind: IocKind, raw: &str) -> IocKey {
        IocKey::parse(kind, raw).unwrap()
    }

    #[test]
    fn bundle_roundtrips_bitwise() {
        let b = tiny_bundle();
        let bytes = b.to_bytes();
        let b2 = ServeBundle::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(b2.to_bytes(), bytes);
        assert_eq!(b2.events(), b.events());
        assert_eq!(b2.class_names(), b.class_names());
        assert_eq!(b2.sage_config(), b.sage_config());
    }

    #[test]
    fn save_load_roundtrips_via_disk() {
        let b = tiny_bundle();
        let dir = std::env::temp_dir().join(format!("tsb1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.tsb");
        b.save(&path).expect("save");
        let b2 = ServeBundle::load(&path).expect("load");
        assert_eq!(b2.to_bytes(), b.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_frames_are_rejected_with_typed_errors() {
        let bytes = tiny_bundle().to_bytes();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(ServeBundle::from_bytes(&bad), Err(PersistError::BadMagic { .. })));
        // Version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            ServeBundle::from_bytes(&bad),
            Err(PersistError::UnsupportedVersion { found: 99 })
        ));
        // Truncation at every prefix of the header.
        for cut in [0usize, 3, 8, 23] {
            assert!(matches!(
                ServeBundle::from_bytes(&bytes[..cut]),
                Err(PersistError::TooShort { .. })
            ));
        }
        // Hostile length field, validated before any slicing.
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ServeBundle::from_bytes(&bad),
            Err(PersistError::Truncated { want: u64::MAX, .. })
        ));
        // Payload bit flips: checksum catches every one.
        for &at in &[24usize, 100, 1000] {
            let mut bad = bytes.clone();
            if at < bad.len() {
                bad[at] ^= 0x10;
                assert!(
                    matches!(
                        ServeBundle::from_bytes(&bad),
                        Err(PersistError::ChecksumMismatch { .. })
                    ),
                    "flip at {at}"
                );
            }
        }
        // Truncated payload.
        assert!(matches!(
            ServeBundle::from_bytes(&bytes[..bytes.len() - 1]),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn attribution_favours_the_reporting_apt_neighbourhood() {
        let b = tiny_bundle();
        let mut model = b.instantiate_model();
        let limits = QueryLimits::default();
        let a = b.attribute(&mut model, &[key(IocKind::Ip, "1.1.1.1")], &limits);
        assert_eq!(a.matched, 1);
        assert!(a.members >= 3, "ego net spans the shared events");
        assert_eq!(a.events, 2, "both class-0 events are in radius 2");
        assert_eq!(a.ranked.len(), 3);
        let total: f32 = a.ranked.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-4, "scores normalise, got {total}");
        // Unknown IOCs attribute to nothing.
        let none = b.attribute(&mut model, &[key(IocKind::Ip, "203.0.113.9")], &limits);
        assert_eq!(none.matched, 0);
        assert!(none.ranked.is_empty());
    }

    #[test]
    fn attribution_is_a_pure_function_of_the_query() {
        let b = tiny_bundle();
        let limits = QueryLimits::default();
        let q = vec![key(IocKind::Ip, "1.1.1.1"), key(IocKind::Domain, "apt.example")];
        let mut m1 = b.instantiate_model();
        let mut m2 = b.instantiate_model();
        let a1 = b.attribute(&mut m1, &q, &limits);
        // Interleave an unrelated query on m2 — scratch state must not leak.
        let _ = b.attribute(&mut m2, &[key(IocKind::Ip, "2.2.2.2")], &limits);
        let a2 = b.attribute(&mut m2, &q, &limits);
        assert_eq!(a1, a2, "bitwise-identical across replicas and history");
    }

    #[test]
    fn member_cap_truncates_deterministically() {
        let b = tiny_bundle();
        let mut model = b.instantiate_model();
        let q = [key(IocKind::Ip, "1.1.1.1")];
        let capped = QueryLimits { radius: 2, max_members: 2 };
        let a = b.attribute(&mut model, &q, &capped);
        assert_eq!(a.members, 2);
        let again = b.attribute(&mut model, &q, &capped);
        assert_eq!(a, again);
    }

    #[test]
    fn runtime_sheds_load_while_breaker_is_open_and_recovers() {
        let bundle = Arc::new(tiny_bundle());
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_rejections: 2,
            half_open_successes: 1,
        }));
        let rt = ServeRuntime::new(bundle, breaker, RuntimeConfig::default());
        let good = Query::new(vec![key(IocKind::Ip, "1.1.1.1")]);
        // Trip the breaker.
        assert!(matches!(rt.handle(&Query::poison()).outcome, Outcome::Failed(_)));
        // Cooldown: rejections, no graph work.
        assert!(matches!(rt.handle(&good).outcome, Outcome::Rejected));
        assert!(matches!(rt.handle(&good).outcome, Outcome::Rejected));
        // Half-open probe succeeds and re-closes.
        assert!(matches!(rt.handle(&good).outcome, Outcome::Ranked(_)));
        assert!(matches!(rt.handle(&good).outcome, Outcome::Ranked(_)));
    }

    #[test]
    fn loadgen_is_deterministic_for_a_seed() {
        let bundle = Arc::new(tiny_bundle());
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig::default()));
        let rt = ServeRuntime::new(bundle, breaker, RuntimeConfig::default());
        let mix = LoadMix { queries: 40, iocs_per_query: 3, ..Default::default() };
        let a = loadgen::generate(&rt, &mix);
        let b = loadgen::generate(&rt, &mix);
        assert_eq!(a.len(), 40);
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.iocs, qb.iocs);
            assert_eq!(qa.poison, qb.poison);
        }
        let other = loadgen::generate(&rt, &LoadMix { seed: 999, ..mix });
        assert!(a.iter().zip(&other).any(|(x, y)| x.iocs != y.iocs));
    }

    #[test]
    fn level_reports_reconcile_and_fingerprint_identically_across_widths() {
        let bundle = Arc::new(tiny_bundle());
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig::default()));
        let rt = ServeRuntime::new(
            bundle,
            breaker,
            RuntimeConfig { replicas: 8, limits: QueryLimits::default() },
        );
        let queries =
            loadgen::generate(&rt, &LoadMix { queries: 64, iocs_per_query: 4, ..Default::default() });
        let lvl1 = loadgen::run_level(&rt, &queries, 1);
        let lvl8 = loadgen::run_level(&rt, &queries, 8);
        for lvl in [&lvl1, &lvl8] {
            assert_eq!(lvl.issued, 64);
            assert_eq!(lvl.admitted, 64);
            assert_eq!(lvl.rejected, 0);
            assert_eq!(lvl.completed + lvl.failed, lvl.admitted);
            assert!(lvl.counters_reconciled, "obs counters must reconcile exactly");
        }
        assert_eq!(lvl1.fingerprint, lvl8.fingerprint, "rankings must not depend on width");
    }
}
