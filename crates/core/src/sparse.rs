//! Sparse feature vectors.
//!
//! IOC feature vectors are overwhelmingly one-hot blocks (a 1,517-dim
//! URL vector typically has ~20 non-zeros), so the TKG feature store
//! keeps them sparse and densifies per minibatch.

use serde::{Deserialize, Serialize};

/// A sparse `f32` vector with a fixed logical dimensionality.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    /// Logical width.
    pub dims: u32,
    /// `(index, value)` entries, strictly increasing by index.
    pub entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Compress a dense slice (drops zeros).
    pub fn from_dense(dense: &[f32]) -> Self {
        let entries = dense
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        Self { dims: dense.len() as u32, entries }
    }

    /// Materialise as a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dims as usize];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Write into a dense row slice (must match `dims`).
    pub fn write_dense(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.dims as usize);
        out.fill(0.0);
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Content fingerprint over the `(index, value-bits)` entries and
    /// the logical width. Equal vectors always fingerprint equally, so
    /// the incremental code cache can key encoded rows on it.
    pub fn fingerprint(&self) -> u64 {
        self.as_ref().fingerprint()
    }

    /// Value at index `i`.
    pub fn get(&self, i: u32) -> f32 {
        self.as_ref().get(i)
    }

    /// Borrow as a [`SparseRef`] view.
    #[inline]
    pub fn as_ref(&self) -> SparseRef<'_> {
        SparseRef { dims: self.dims, entries: &self.entries }
    }
}

/// Borrowed view of a sparse vector: the storage-agnostic form every
/// feature consumer works with. An owned [`SparseVec`] and an arena
/// span (see [`FeatureArena`]) present identically through it, and the
/// fingerprint runs over the same bytes either way — the incremental
/// code cache's dirty-row detection depends on that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseRef<'a> {
    /// Logical width.
    pub dims: u32,
    /// `(index, value)` entries, strictly increasing by index.
    pub entries: &'a [(u32, f32)],
}

impl SparseRef<'_> {
    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Materialise as a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dims as usize];
        for &(i, v) in self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Value at index `i`.
    pub fn get(&self, i: u32) -> f32 {
        self.entries
            .binary_search_by_key(&i, |&(idx, _)| idx)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    /// See [`SparseVec::fingerprint`]; byte-identical for equal content.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut step = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        };
        for &b in &self.dims.to_le_bytes() {
            step(b);
        }
        for &(i, v) in self.entries {
            for &b in &i.to_le_bytes() {
                step(b);
            }
            for &b in &v.to_bits().to_le_bytes() {
                step(b);
            }
        }
        h
    }
}

/// Arena feature store: one slab of `(index, value)` entries plus a
/// span table, replacing a `HashMap<NodeId, SparseVec>` whose per-node
/// `Vec` allocations (3 words of header + a separate heap block each)
/// dominated feature-store memory at paper scale. Insert-only,
/// first-write-wins, matching the enrichment idempotency contract.
#[derive(Debug, Clone, Default)]
pub struct FeatureArena {
    /// Concatenated entry storage for all stored vectors.
    entries: Vec<(u32, f32)>,
    /// `(start, len, dims)` per stored vector, in insertion order.
    spans: Vec<(u32, u32, u32)>,
    /// Node index → span index; `u32::MAX` = no features.
    slot: Vec<u32>,
}

const NO_SPAN: u32 = u32::MAX;

impl FeatureArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `sv` for node index `node` unless it already has features
    /// (first write wins). Returns whether the write happened.
    pub fn insert_if_absent(&mut self, node: usize, sv: &SparseVec) -> bool {
        if self.slot.len() <= node {
            self.slot.resize(node + 1, NO_SPAN);
        }
        if self.slot[node] != NO_SPAN {
            return false;
        }
        // Entry offsets share the u32 discipline of the CSR: accumulate
        // in u64, fail loudly at the boundary instead of wrapping.
        let start = self.entries.len() as u64;
        assert!(
            start + sv.entries.len() as u64 <= u64::from(u32::MAX),
            "feature arena entry count overflows the u32 span domain"
        );
        self.entries.extend_from_slice(&sv.entries);
        self.slot[node] =
            u32::try_from(self.spans.len()).expect("span table bounded by node count");
        self.spans.push((start as u32, sv.entries.len() as u32, sv.dims));
        true
    }

    /// Borrow the features of node index `node`, if stored.
    #[inline]
    pub fn get(&self, node: usize) -> Option<SparseRef<'_>> {
        let span = *self.slot.get(node)?;
        if span == NO_SPAN {
            return None;
        }
        let (start, len, dims) = self.spans[span as usize];
        Some(SparseRef {
            dims,
            entries: &self.entries[start as usize..(start + len) as usize],
        })
    }

    /// True when the node has stored features.
    #[inline]
    pub fn contains(&self, node: usize) -> bool {
        self.slot.get(node).is_some_and(|&s| s != NO_SPAN)
    }

    /// Number of featured nodes.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate `(node index, features)` in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, SparseRef<'_>)> {
        self.slot
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != NO_SPAN)
            .map(move |(node, _)| (node, self.get(node).expect("slot points at a span")))
    }

    /// Heap bytes held by the arena (entry slab + span table + slots).
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(u32, f32)>()
            + self.spans.len() * std::mem::size_of::<(u32, u32, u32)>()
            + self.slot.len() * std::mem::size_of::<u32>()
    }
}

/// Gather sparse rows into a dense [`trail_linalg::Matrix`].
///
/// Row-parallel over the shared worker pool: each dense row is filled
/// from exactly one sparse vector, so the result is independent of
/// the thread count.
pub fn densify(rows: &[SparseRef<'_>], dims: usize) -> trail_linalg::Matrix {
    let mut m = trail_linalg::Matrix::zeros(rows.len(), dims);
    if dims == 0 {
        return m;
    }
    trail_linalg::pool::parallel_for_rows(m.as_mut_slice(), dims, 64, |row0, band| {
        for (i, out) in band.chunks_exact_mut(dims).enumerate() {
            let sv = rows[row0 + i];
            debug_assert_eq!(sv.dims as usize, dims);
            for &(j, v) in sv.entries {
                out[j as usize] = v;
            }
        }
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let sv = SparseVec::from_dense(&dense);
        assert_eq!(sv.nnz(), 2);
        assert_eq!(sv.to_dense(), dense);
        assert_eq!(sv.get(3), -2.0);
        assert_eq!(sv.get(0), 0.0);
    }

    #[test]
    fn write_dense_clears_stale_values() {
        let sv = SparseVec::from_dense(&[1.0, 0.0]);
        let mut buf = vec![9.0, 9.0];
        sv.write_dense(&mut buf);
        assert_eq!(buf, vec![1.0, 0.0]);
    }

    #[test]
    fn densify_batches() {
        let a = SparseVec::from_dense(&[1.0, 0.0, 0.0]);
        let b = SparseVec::from_dense(&[0.0, 0.0, 2.0]);
        let m = densify(&[a.as_ref(), b.as_ref()], 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn empty_vector_is_fine() {
        let sv = SparseVec::from_dense(&[0.0; 4]);
        assert_eq!(sv.nnz(), 0);
        assert_eq!(sv.to_dense(), vec![0.0; 4]);
    }

    #[test]
    fn ref_view_matches_owned_vector() {
        let sv = SparseVec::from_dense(&[0.0, 1.5, 0.0, -2.0]);
        let r = sv.as_ref();
        assert_eq!(r.nnz(), sv.nnz());
        assert_eq!(r.to_dense(), sv.to_dense());
        assert_eq!(r.get(3), -2.0);
        assert_eq!(r.get(0), 0.0);
        // Byte-identical fingerprints: the code cache keys on this.
        assert_eq!(r.fingerprint(), sv.fingerprint());
    }

    #[test]
    fn arena_first_write_wins_and_iterates_in_id_order() {
        let mut arena = FeatureArena::new();
        let a = SparseVec::from_dense(&[1.0, 0.0]);
        let b = SparseVec::from_dense(&[0.0, 2.0]);
        assert!(arena.insert_if_absent(5, &a));
        assert!(arena.insert_if_absent(2, &b));
        assert!(!arena.insert_if_absent(5, &b), "second write must lose");
        assert_eq!(arena.len(), 2);
        assert!(arena.contains(2));
        assert!(!arena.contains(3));
        assert!(!arena.contains(999));
        assert_eq!(arena.get(5).unwrap().get(0), 1.0);
        assert_eq!(arena.get(5).unwrap().fingerprint(), a.fingerprint());
        assert!(arena.get(7).is_none());
        let order: Vec<usize> = arena.iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec![2, 5], "iteration must be ascending by node index");
        assert!(arena.heap_bytes() > 0);
    }

    #[test]
    fn arena_stores_empty_vectors_distinct_from_absent() {
        let mut arena = FeatureArena::new();
        let empty = SparseVec::from_dense(&[0.0; 3]);
        assert!(arena.insert_if_absent(0, &empty));
        assert!(arena.contains(0));
        let r = arena.get(0).unwrap();
        assert_eq!(r.nnz(), 0);
        assert_eq!(r.dims, 3);
        assert_eq!(r.fingerprint(), empty.fingerprint());
    }
}
