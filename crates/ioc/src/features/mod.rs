//! Fixed-layout feature encoders (paper Section IV-B).
//!
//! Dimensionalities match the paper exactly: URLs 1,517, IPs 507,
//! domains 115. Every slot has a stable, human-readable name so the
//! SHAP-style explanations of Fig. 9 can label their axes.
//!
//! Where the paper's block arithmetic is ambiguous, the concrete layout
//! chosen here is recorded in DESIGN.md.

pub mod domain_enc;
pub mod ip_enc;
pub mod url_enc;

pub use domain_enc::DomainEncoder;
pub use ip_enc::IpEncoder;
pub use url_enc::UrlEncoder;

/// Feature-vector width for URLs.
pub const URL_DIMS: usize = 1517;
/// Feature-vector width for IPs.
pub const IP_DIMS: usize = 507;
/// Feature-vector width for domains.
pub const DOMAIN_DIMS: usize = 115;

/// The top-100 TLD vocabulary shared by the URL and domain encoders.
pub(crate) const COMMON_TLDS: &[&str] = &[
    "com", "net", "org", "info", "biz", "ru", "cn", "club", "xyz", "top", "site", "online", "io",
    "me", "cc", "tv", "us", "uk", "de", "fr", "kr", "jp", "in", "br", "ir", "vn", "pl", "nl",
    "eu", "su", "pw", "ws", "link", "space", "live", "tech", "store", "pro", "work", "life",
];

/// Curated server-software names (first slots of the 944-way block).
pub(crate) const COMMON_SERVERS: &[&str] = &[
    "nginx", "apache", "iis", "litespeed", "caddy", "cloudflare", "gws", "openresty", "lighttpd",
    "tengine", "tomcat", "jetty", "gunicorn", "kestrel", "cherokee", "hiawatha", "monkey",
    "thttpd", "boa", "mini_httpd",
];

/// Curated server operating systems (50-way block).
pub(crate) const COMMON_OS: &[&str] = &[
    "linux", "ubuntu", "debian", "centos", "windows", "freebsd", "openbsd", "alpine", "rhel",
    "fedora", "gentoo", "unix",
];

/// Curated content encodings (12-way block).
pub(crate) const COMMON_ENCODINGS: &[&str] =
    &["gzip", "deflate", "br", "identity", "compress", "zstd", "chunked", "none"];

/// Curated MIME file types (106-way block).
pub(crate) const COMMON_FILE_TYPES: &[&str] = &[
    "text/html", "text/plain", "application/octet-stream", "application/x-msdownload",
    "application/zip", "application/pdf", "application/javascript", "application/json",
    "image/png", "image/jpeg", "image/gif", "application/x-dosexec", "application/msword",
    "application/x-rar", "application/x-7z-compressed", "application/xml",
    "application/x-shockwave-flash", "text/css", "application/vnd.ms-excel",
    "application/x-executable",
];

/// Curated coarse file classes (21-way block).
pub(crate) const COMMON_FILE_CLASSES: &[&str] = &[
    "html", "text", "binary", "pe", "elf", "script", "archive", "document", "image", "flash",
    "java", "apk", "cert", "data",
];

/// Curated HTTP response codes (68-way block, string-keyed).
pub(crate) const COMMON_HTTP_CODES: &[&str] = &[
    "200", "301", "302", "303", "304", "307", "308", "400", "401", "403", "404", "405", "410",
    "418", "429", "500", "502", "503", "504",
];

/// Curated service banners (183-way multi-hot block).
pub(crate) const COMMON_SERVICES: &[&str] = &[
    "http", "https", "ssh", "ftp", "smtp", "dns", "rdp", "telnet", "mysql", "postgres", "smb",
    "vnc", "pop3", "imap", "proxy", "socks", "tor", "irc", "ntp", "snmp",
];

/// Curated header flags (23-way multi-hot block).
pub(crate) const COMMON_HEADER_FLAGS: &[&str] = &[
    "hsts", "csp", "xss-protection", "nosniff", "cors", "set-cookie", "redirect", "self-signed",
    "expired-cert", "keep-alive", "etag", "cache-control", "powered-by", "frame-deny",
];

/// Curated ISO country codes (249-way block).
pub(crate) const COMMON_COUNTRIES: &[&str] = &[
    "us", "cn", "ru", "kp", "ir", "de", "fr", "gb", "nl", "kr", "jp", "in", "br", "ua", "lv",
    "lt", "ee", "pl", "ro", "bg", "tr", "vn", "th", "sg", "hk", "tw", "ca", "au", "se", "ch",
    "es", "it", "cz", "hu", "il", "ae", "sa", "pk", "id", "my",
];

/// Curated IP issuers / registries (250-way block).
pub(crate) const COMMON_ISSUERS: &[&str] = &[
    "arin", "ripe", "apnic", "lacnic", "afrinic", "cloudflare", "amazon", "google", "microsoft",
    "digitalocean", "ovh", "hetzner", "linode", "vultr", "alibaba", "tencent", "selectel",
    "king-servers", "m247", "choopa",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_paper() {
        assert_eq!(URL_DIMS, 1517);
        assert_eq!(IP_DIMS, 507);
        assert_eq!(DOMAIN_DIMS, 115);
    }
}
