//! Cache-blocked, autovectorisation-friendly dense kernels.
//!
//! Every kernel here preserves the **per-element f32 accumulation
//! order** of the straightforward ikj formulation it replaced: for any
//! output element `C[i][j]`, the products `a[i][k]·b[k][j]` are added
//! one at a time in strictly increasing `k`, starting from the value
//! already in `C[i][j]`. Blocking only changes *which registers* hold
//! the partial sums and *when* they round-trip through memory — an
//! f32 store/reload is exact — so results are bitwise identical to the
//! naive kernels (see DESIGN.md §11 for the full argument). That is
//! what keeps the golden-fingerprint, incremental-vs-full and
//! thread-invariance gates green without tolerance changes.
//!
//! The kernels are also **branch-free** in the inner loops: zeros and
//! non-finite values take the same path, so NaN/Inf propagate exactly
//! as scalar arithmetic would. The old `av == 0.0` skip lives on only
//! in [`crate::reference`] (as the bit-for-bit legacy baseline) and in
//! the explicitly sparse-aware entry point
//! [`crate::Matrix::matmul_sparse_into`].
//!
//! Tiling scheme (all loops in plain safe Rust; the fixed-size
//! `[[f32; NR]; MR]` register tile is what lets LLVM keep the whole
//! accumulator in vector registers):
//!
//! * `KC` — depth of the k-tile. One `KC × b_cols` slab of B is
//!   streamed per row block and stays hot in L1/L2.
//! * `MR × NR` — the register tile: `MR` rows of C by `NR` columns
//!   (one 64-byte cache line of f32). Each k step broadcasts `MR`
//!   values of A against one `NR`-wide row of B.

/// Register-tile rows.
pub const MR: usize = 4;
/// Register-tile columns: one cache line of f32.
pub const NR: usize = 16;
/// k-tile depth: a `KC × NR` panel of B is 16 KiB, comfortably L1.
pub const KC: usize = 256;

/// One `R × b_cols` row band of `C += A @ B`, restricted to the k-tile
/// `k0 .. k0 + kc`. `R` is const so the accumulator tile is a true
/// fixed-size array.
fn mm_block<const R: usize>(
    a: &[f32],
    a_cols: usize,
    i: usize,
    b: &[f32],
    b_cols: usize,
    c: &mut [f32],
    k0: usize,
    kc: usize,
) {
    let mut j = 0;
    while j + NR <= b_cols {
        // Load the C tile into registers, accumulate the k-tile, store.
        let mut acc = [[0.0f32; NR]; R];
        for r in 0..R {
            let c_row: &[f32; NR] = c[(i + r) * b_cols + j..][..NR].try_into().unwrap();
            acc[r] = *c_row;
        }
        for k in k0..k0 + kc {
            let b_row: &[f32; NR] = b[k * b_cols + j..][..NR].try_into().unwrap();
            for r in 0..R {
                let av = a[(i + r) * a_cols + k];
                for l in 0..NR {
                    acc[r][l] += av * b_row[l];
                }
            }
        }
        for r in 0..R {
            c[(i + r) * b_cols + j..][..NR].copy_from_slice(&acc[r]);
        }
        j += NR;
    }
    if j < b_cols {
        // Column tail (< NR wide): accumulate through memory, same
        // increasing-k order per element.
        for r in 0..R {
            for k in k0..k0 + kc {
                let av = a[(i + r) * a_cols + k];
                let b_tail = &b[k * b_cols + j..(k + 1) * b_cols];
                let c_tail = &mut c[(i + r) * b_cols + j..(i + r + 1) * b_cols];
                for (cv, &bv) in c_tail.iter_mut().zip(b_tail) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `C += A @ B` over row-major slices. `A` is `(c.len()/b_cols) × a_cols`,
/// `B` is `a_cols × b_cols`. Branch-free; bitwise equal to the naive
/// ikj loop (and, on finite inputs, to the legacy zero-skipping kernel
/// — a `+0.0` accumulator is unchanged by adding `±0.0` products).
pub fn matmul_rows(a: &[f32], a_cols: usize, b: &[f32], b_cols: usize, c: &mut [f32]) {
    if a_cols == 0 || b_cols == 0 || c.is_empty() {
        return;
    }
    let rows = c.len() / b_cols;
    debug_assert_eq!(a.len(), rows * a_cols);
    debug_assert_eq!(b.len(), a_cols * b_cols);
    // k-tiles ascending (outermost) keeps each element's product order
    // identical to the unblocked loop.
    let mut k0 = 0;
    while k0 < a_cols {
        let kc = (a_cols - k0).min(KC);
        let mut i = 0;
        while i + MR <= rows {
            mm_block::<MR>(a, a_cols, i, b, b_cols, c, k0, kc);
            i += MR;
        }
        while i < rows {
            mm_block::<1>(a, a_cols, i, b, b_cols, c, k0, kc);
            i += 1;
        }
        k0 += kc;
    }
}

/// One `R`-row band of `out += packᵀ·B` where `pack` holds `R` columns
/// of A (rows `i..i+R` of Aᵀ) for the k-tile, laid out `pack[r*kc + kk]`.
fn tm_block<const R: usize>(
    pack: &[f32],
    kc: usize,
    b: &[f32],
    b_cols: usize,
    k0: usize,
    i: usize,
    out: &mut [f32],
) {
    let mut j = 0;
    while j + NR <= b_cols {
        let mut acc = [[0.0f32; NR]; R];
        for r in 0..R {
            let o_row: &[f32; NR] = out[(i + r) * b_cols + j..][..NR].try_into().unwrap();
            acc[r] = *o_row;
        }
        for kk in 0..kc {
            let b_row: &[f32; NR] = b[(k0 + kk) * b_cols + j..][..NR].try_into().unwrap();
            for r in 0..R {
                let av = pack[r * kc + kk];
                for l in 0..NR {
                    acc[r][l] += av * b_row[l];
                }
            }
        }
        for r in 0..R {
            out[(i + r) * b_cols + j..][..NR].copy_from_slice(&acc[r]);
        }
        j += NR;
    }
    if j < b_cols {
        for r in 0..R {
            for kk in 0..kc {
                let av = pack[r * kc + kk];
                let b_tail = &b[(k0 + kk) * b_cols + j..(k0 + kk + 1) * b_cols];
                let o_tail = &mut out[(i + r) * b_cols + j..(i + r + 1) * b_cols];
                for (ov, &bv) in o_tail.iter_mut().zip(b_tail) {
                    *ov += av * bv;
                }
            }
        }
    }
}

/// `out += Aᵀ @ B` over row-major slices: `A` is `a_rows × a_cols`,
/// `B` is `a_rows × b_cols`, `out` is `a_cols × b_cols`. The k
/// dimension is `a_rows` and is walked in ascending tiles, so each
/// element accumulates products in the same increasing-k order as the
/// k-outermost naive loop. A's columns are packed into a small stack
/// tile per (row-block, k-tile) so the inner loop streams contiguously.
pub fn t_matmul_rows(
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    out: &mut [f32],
) {
    if a_rows == 0 || a_cols == 0 || b_cols == 0 {
        return;
    }
    debug_assert_eq!(a.len(), a_rows * a_cols);
    debug_assert_eq!(b.len(), a_rows * b_cols);
    debug_assert_eq!(out.len(), a_cols * b_cols);
    let mut pack = [0.0f32; MR * KC];
    // k-tiles outermost: the `kc × a_cols` slab of A being packed and
    // the matching slab of B stay cache-resident across the whole i
    // sweep (i-outermost would re-stream all of A, column-strided, per
    // row block). Per element the order is unchanged either way — k
    // ascends tile by tile.
    let mut k0 = 0;
    while k0 < a_rows {
        let kc = (a_rows - k0).min(KC);
        let mut i = 0;
        while i < a_cols {
            let rb = (a_cols - i).min(MR);
            for r in 0..rb {
                for kk in 0..kc {
                    pack[r * kc + kk] = a[(k0 + kk) * a_cols + i + r];
                }
            }
            if rb == MR {
                tm_block::<MR>(&pack, kc, b, b_cols, k0, i, out);
            } else {
                for r in 0..rb {
                    tm_block::<1>(&pack[r * kc..(r + 1) * kc], kc, b, b_cols, k0, i + r, out);
                }
            }
            i += rb;
        }
        k0 += kc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], a_cols: usize, b: &[f32], b_cols: usize, c: &mut [f32]) {
        for (a_row, c_row) in a.chunks_exact(a_cols).zip(c.chunks_exact_mut(b_cols)) {
            for (k, &av) in a_row.iter().enumerate() {
                let b_row = &b[k * b_cols..(k + 1) * b_cols];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
    }

    fn fill(seed: u32, len: usize) -> Vec<f32> {
        // Cheap LCG: varied magnitudes, exact zeros sprinkled in.
        let mut s = seed as u64 | 1;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 33) as i32 % 1000) as f32 / 97.0;
                if (s >> 20) % 7 == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise_awkward_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 16, 16), (5, 17, 33), (9, 300, 19), (64, 257, 48)]
        {
            let a = fill(m as u32 * 31 + k as u32, m * k);
            let b = fill(n as u32 * 17 + 3, k * n);
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = c1.clone();
            naive(&a, k, &b, n, &mut c1);
            matmul_rows(&a, k, &b, n, &mut c2);
            assert!(
                c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n}) diverged"
            );
        }
    }

    #[test]
    fn t_matmul_matches_k_outer_naive_bitwise() {
        for &(rows, d_in, d_out) in &[(1, 1, 1), (7, 3, 5), (40, 17, 33), (300, 9, 21)] {
            let a = fill(rows as u32 + 5, rows * d_in);
            let b = fill(d_out as u32 + 11, rows * d_out);
            let mut o1 = vec![0.0f32; d_in * d_out];
            let mut o2 = o1.clone();
            for k in 0..rows {
                for i in 0..d_in {
                    let av = a[k * d_in + i];
                    for j in 0..d_out {
                        o1[i * d_out + j] += av * b[k * d_out + j];
                    }
                }
            }
            t_matmul_rows(&a, rows, d_in, &b, d_out, &mut o2);
            assert!(
                o1.iter().zip(&o2).all(|(x, y)| x.to_bits() == y.to_bits()),
                "({rows},{d_in},{d_out}) diverged"
            );
        }
    }

    #[test]
    fn nan_and_inf_propagate() {
        // A zero in A no longer shields a NaN/Inf in B's row.
        let a = [0.0f32, 1.0];
        let b = [f32::NAN, 2.0, 3.0, 4.0];
        let mut c = [0.0f32; 2];
        matmul_rows(&a, 2, &b, 2, &mut c);
        assert!(c[0].is_nan());
    }
}
