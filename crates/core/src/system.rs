//! The end-to-end TRAIL orchestrator: collect → enrich → merge.

use trail_osint::OsintClient;

use crate::collector::{collect_iter, AptRegistry, CollectStats, CollectedEvent};
use crate::enrich::{Enricher, IngestStats};
use crate::shard;
use crate::tkg::Tkg;

/// A built TRAIL system: the knowledge graph plus its data source.
pub struct TrailSystem {
    /// The OSINT client events were pulled from.
    pub client: OsintClient,
    /// The knowledge graph.
    pub tkg: Tkg,
    /// Day the TKG was built (analyses are as-of this day).
    pub asof_day: u32,
    /// Collection statistics of the initial build.
    pub collect_stats: CollectStats,
    /// Aggregate enrichment taxonomy across every ingest this system
    /// has run (initial build plus later windows).
    pub ingest_stats: IngestStats,
}

impl TrailSystem {
    /// Build the TKG from every report created before `until_day`.
    pub fn build(client: OsintClient, until_day: u32) -> Self {
        let registry = AptRegistry::new(client.world().config.n_apts);
        let (events, collect_stats) =
            collect_iter(client.reports_before(until_day), &registry);
        let mut tkg = Tkg::new(registry);
        let mut ingest_stats = IngestStats::default();
        {
            let enricher = Enricher::new(&client, until_day);
            for event in &events {
                ingest_stats.absorb(&enricher.ingest(&mut tkg, event));
            }
        }
        Self { client, tkg, asof_day: until_day, collect_stats, ingest_stats }
    }

    /// [`Self::build`] with shard-parallel enrichment: `threads` shards
    /// are queried concurrently on the shared worker pool, then merged
    /// sequentially. Bitwise-identical to [`Self::build`] — same graph
    /// snapshot, same features, same [`IngestStats`] — at any thread
    /// count (see `crate::shard` for the argument).
    pub fn build_sharded(client: OsintClient, until_day: u32, threads: usize) -> Self {
        let threads = threads.max(1);
        Self::build_with_shards(client, until_day, threads, threads)
    }

    /// [`Self::build_sharded`] with the shard count decoupled from the
    /// worker thread count. Falls back to the sequential [`Self::build`]
    /// when the client carries a circuit breaker — breaker state makes
    /// query outcomes order-dependent, which the shard replay cannot
    /// reproduce.
    pub fn build_with_shards(
        client: OsintClient,
        until_day: u32,
        n_shards: usize,
        threads: usize,
    ) -> Self {
        if client.breaker().is_some() {
            return Self::build(client, until_day);
        }
        let registry = AptRegistry::new(client.world().config.n_apts);
        let (events, collect_stats) =
            collect_iter(client.reports_before(until_day), &registry);
        let (tkg, ingest_stats) =
            shard::build_tkg_sharded(&client, until_day, &events, n_shards.max(1), threads);
        Self { client, tkg, asof_day: until_day, collect_stats, ingest_stats }
    }

    /// Ingest the reports of a later window into the existing TKG
    /// (the monthly update of the longitudinal study). Returns the
    /// collected events and per-event ingest statistics.
    pub fn ingest_window(&mut self, lo: u32, hi: u32) -> Vec<(CollectedEvent, IngestStats)> {
        let (events, stats) = collect_iter(self.client.reports_between(lo, hi), &self.tkg.registry);
        self.collect_stats.kept += stats.kept;
        self.collect_stats.unresolved += stats.unresolved;
        self.collect_stats.conflicting += stats.conflicting;
        self.collect_stats.rejected_indicators += stats.rejected_indicators;
        self.asof_day = self.asof_day.max(hi);
        let enricher = Enricher::new(&self.client, hi);
        events
            .into_iter()
            .map(|e| {
                let s = enricher.ingest(&mut self.tkg, &e);
                self.ingest_stats.absorb(&s);
                (e, s)
            })
            .collect()
    }

    /// Degradation score of everything ingested so far — 0.0 when the
    /// feed was healthy, approaching 1.0 when enrichment ran against a
    /// dead feed. Attribution results should be read alongside this.
    pub fn degradation(&self) -> f64 {
        self.ingest_stats.degradation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trail_osint::{World, WorldConfig};

    fn client() -> OsintClient {
        OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(55))))
    }

    #[test]
    fn build_ingests_all_precutoff_events() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let sys = TrailSystem::build(c, cutoff);
        assert!(sys.collect_stats.kept > 0);
        assert_eq!(sys.tkg.events.len(), sys.collect_stats.kept);
        // The TKG grows beyond first-order nodes via enrichment.
        let (n_nodes, n_edges) = (sys.tkg.graph.node_count(), sys.tkg.graph.edge_count());
        assert!(n_nodes > sys.tkg.events.len() * 2);
        assert!(n_edges >= n_nodes / 2);
    }

    #[test]
    fn incremental_window_ingest_extends_graph() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let horizon = c.world().config.horizon_day();
        let mut sys = TrailSystem::build(c, cutoff);
        let before = sys.tkg.events.len();
        let ingested = sys.ingest_window(cutoff, horizon);
        assert!(!ingested.is_empty());
        assert_eq!(sys.tkg.events.len(), before + ingested.len());
        assert_eq!(sys.asof_day, horizon);
    }

    #[test]
    fn build_aggregates_the_ingest_taxonomy() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let mut sys = TrailSystem::build(c, cutoff);
        let built = sys.ingest_stats.clone();
        assert!(built.first_order > 0);
        assert!(built.linked > 0, "no depth-2 links in a full build");
        assert!(built.missed_permanent > 0, "default 10% gaps produced no misses");
        assert_eq!(built.missed_transient, 0, "no faults injected, yet transient misses");
        // Window ingests keep accumulating into the same aggregate.
        let horizon = sys.client.world().config.horizon_day();
        sys.ingest_window(cutoff, horizon);
        assert!(sys.ingest_stats.first_order > built.first_order);
    }

    #[test]
    fn sharded_build_matches_sequential_build() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let seq = TrailSystem::build(c.clone(), cutoff);
        let seq_bytes = trail_graph::persist::to_bytes(&seq.tkg.graph);
        for threads in [1usize, 2, 8] {
            let par = TrailSystem::build_sharded(c.clone(), cutoff, threads);
            assert_eq!(par.ingest_stats, seq.ingest_stats, "{threads} threads");
            assert_eq!(par.collect_stats, seq.collect_stats);
            assert_eq!(
                trail_graph::persist::to_bytes(&par.tkg.graph),
                seq_bytes,
                "graph diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn sharded_build_with_breaker_falls_back_to_sequential() {
        use trail_osint::CircuitBreaker;
        let world = Arc::new(World::generate(WorldConfig::tiny(55)));
        let breaker = Arc::new(CircuitBreaker::default());
        let c = OsintClient::with_breaker(world, breaker);
        let cutoff = c.world().config.cutoff_day;
        let seq = TrailSystem::build(c.clone(), cutoff);
        let par = TrailSystem::build_sharded(c, cutoff, 4);
        // Same clean feed, so the fallback build agrees with sequential.
        assert_eq!(par.ingest_stats, seq.ingest_stats);
        assert_eq!(
            trail_graph::persist::to_bytes(&par.tkg.graph),
            trail_graph::persist::to_bytes(&seq.tkg.graph)
        );
    }

    #[test]
    fn event_labels_match_world_truth_up_to_label_noise() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let sys = TrailSystem::build(c.clone(), cutoff);
        let mut agree = 0;
        for e in &sys.tkg.events {
            let truth = c.world().truth(&e.report_id).expect("generated event");
            if truth == e.apt as usize {
                agree += 1;
            }
        }
        let frac = agree as f64 / sys.tkg.events.len() as f64;
        assert!(frac > 0.8, "only {frac} of labels agree with ground truth");
        assert!(frac <= 1.0);
    }
}
