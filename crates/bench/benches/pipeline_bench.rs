//! End-to-end pipeline micro-benchmarks: world generation, report
//! parsing, single-event ingestion with two-hop enrichment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use trail::collector::{collect, AptRegistry};
use trail::enrich::Enricher;
use trail::tkg::Tkg;
use trail_osint::{OsintClient, World, WorldConfig};

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_generation");
    group.sample_size(10);
    group.bench_function("generate_quarter_scale", |b| {
        b.iter(|| {
            let cfg = WorldConfig::default().scaled(0.25);
            std::hint::black_box(World::generate(cfg).events.len())
        })
    });
    group.finish();
}

fn bench_ingestion(c: &mut Criterion) {
    let cfg = WorldConfig::default().scaled(0.25);
    let client = OsintClient::new(Arc::new(World::generate(cfg)));
    let cutoff = client.world().config.cutoff_day;
    let reports = client.events_before(cutoff);
    let registry = AptRegistry::new(client.world().config.n_apts);
    let (events, _) = collect(&reports, &registry);

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("parse_and_collect_all_reports", |b| {
        b.iter(|| std::hint::black_box(collect(&reports, &registry).0.len()))
    });
    group.sample_size(20);
    group.bench_function("ingest_one_event_two_hop", |b| {
        b.iter_batched(
            || Tkg::new(AptRegistry::new(client.world().config.n_apts)),
            |mut tkg| {
                let enricher = Enricher::new(&client, cutoff);
                std::hint::black_box(enricher.ingest(&mut tkg, &events[0]).edges)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("ingest_fifty_events", |b| {
        b.iter_batched(
            || Tkg::new(AptRegistry::new(client.world().config.n_apts)),
            |mut tkg| {
                let enricher = Enricher::new(&client, cutoff);
                for e in events.iter().take(50) {
                    enricher.ingest(&mut tkg, e);
                }
                std::hint::black_box(tkg.graph.node_count())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_world_generation, bench_ingestion);
criterion_main!(benches);
