//! Compact-CSR equivalence suite: the u32 adjacency layout (`Csr`)
//! against the pointer-width reference (`WideCsr`) on a real ingested
//! world. `WideCsr::agrees_with` proves the layouts are structurally
//! identical; the tests here go further and run the Section V
//! traversal suite (BFS distances, connected components, k-hop,
//! ego-nets, double-sweep diameter, delta-merge chains) on the
//! compact layout while recomputing each answer from independent
//! reference code over the wide layout. A packing bug that survived
//! the structural check would have to also fool every traversal.

use std::collections::VecDeque;
use std::sync::Arc;

use trail::system::TrailSystem;
use trail_graph::algo::{
    bfs_distances, connected_components, diameter_double_sweep, ego_net, k_hop,
};
use trail_graph::algo::bfs::UNREACHABLE;
use trail_graph::{Csr, NodeId, WideCsr};
use trail_osint::{OsintClient, World, WorldConfig};

fn build(seed: u64) -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(seed))));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

/// Reference BFS over the wide layout — independent of `Csr` entirely.
fn wide_bfs(wide: &WideCsr, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; wide.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for v in wide.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[test]
fn layouts_agree_structurally_and_compact_is_smaller() {
    let sys = build(1500);
    let csr = sys.tkg.csr();
    let wide = WideCsr::from_store(&sys.tkg.graph);
    assert!(wide.agrees_with(&csr));
    // The point of the compact layout: >=40% less adjacency heap.
    let ratio = csr.heap_bytes() as f64 / wide.heap_bytes() as f64;
    assert!(ratio <= 0.6, "compact/wide heap ratio {ratio:.3} > 0.6");
}

#[test]
fn bfs_distances_match_a_wide_reference() {
    let sys = build(1501);
    let csr = sys.tkg.csr();
    let wide = WideCsr::from_store(&sys.tkg.graph);
    let n = csr.node_count();
    for source in [0, n / 3, n / 2, n - 1] {
        let s = NodeId::from(source);
        assert_eq!(bfs_distances(&csr, s), wide_bfs(&wide, s), "source {source}");
    }
}

#[test]
fn connected_components_match_a_wide_flood_fill() {
    let sys = build(1502);
    let csr = sys.tkg.csr();
    let wide = WideCsr::from_store(&sys.tkg.graph);
    let summary = connected_components(&csr);

    // Reference: BFS flood fill over the wide layout.
    let n = wide.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        let mut queue = VecDeque::from([NodeId::from(start)]);
        comp[start] = c;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for v in wide.neighbors(u) {
                if comp[v.index()] == u32::MAX {
                    comp[v.index()] = c;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }

    let mut ref_sorted = sizes.clone();
    ref_sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(summary.sizes, ref_sorted);
    assert_eq!(summary.count(), sizes.len());
    // Same partition: two nodes share a compact component iff the
    // wide flood fill put them in one.
    for u in 0..n {
        for v in wide.neighbors(NodeId::from(u)) {
            assert_eq!(summary.assignment[u], summary.assignment[v.index()]);
            assert_eq!(comp[u], comp[v.index()]);
        }
    }
    let total: usize = summary.sizes.iter().sum();
    assert_eq!(total, n);
}

#[test]
fn k_hop_and_ego_net_match_a_wide_reference() {
    let sys = build(1503);
    let csr = sys.tkg.csr();
    let wide = WideCsr::from_store(&sys.tkg.graph);
    let ego = sys.tkg.events[0].node;
    for radius in [1u32, 2, 3] {
        let hood = k_hop(&csr, &[ego], radius);
        let ref_dist = wide_bfs(&wide, ego);
        // Same membership at the same distances, radius-bounded.
        let mut expect: Vec<(usize, u32)> = ref_dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHABLE && d <= radius)
            .map(|(i, &d)| (i, d))
            .collect();
        let mut got: Vec<(usize, u32)> =
            hood.iter().map(|&(id, d)| (id.index(), d)).collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect, "radius {radius}");

        let net = ego_net(&sys.tkg.graph, &csr, ego, radius);
        let mut net_members: Vec<(usize, u32)> =
            net.members.iter().map(|&(id, d)| (id.index(), d)).collect();
        net_members.sort_unstable();
        assert_eq!(net_members, expect, "ego-net radius {radius}");
        // Every induced edge really has both endpoints in the net, and
        // the count matches an independent scan of the store.
        let in_net: std::collections::HashSet<usize> =
            expect.iter().map(|&(i, _)| i).collect();
        let expected_edges = sys
            .tkg
            .graph
            .edges()
            .iter()
            .filter(|e| in_net.contains(&e.src.index()) && in_net.contains(&e.dst.index()))
            .count();
        assert_eq!(net.edges.len(), expected_edges, "induced edges radius {radius}");
    }
}

#[test]
fn diameter_double_sweep_matches_a_wide_reference() {
    let sys = build(1504);
    let csr = sys.tkg.csr();
    let wide = WideCsr::from_store(&sys.tkg.graph);
    let start = sys.tkg.events[0].node;

    // Mirror the double-sweep over the wide layout, identical
    // tie-breaking (last maximum, as `max_by_key` resolves ties).
    let mut best = 0;
    let mut from = start;
    for _ in 0..4 {
        let dist = wide_bfs(&wide, from);
        let (far_node, far_dist) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHABLE)
            .max_by_key(|&(_, &d)| d)
            .map(|(i, &d)| (NodeId::from(i), d))
            .unwrap_or((from, 0));
        if far_dist <= best {
            break;
        }
        best = far_dist;
        from = far_node;
    }
    assert_eq!(diameter_double_sweep(&csr, start, 4), best);
    assert!(best > 0, "degenerate fixture: diameter 0");
}

#[test]
fn merge_appended_chain_stays_in_agreement() {
    let mut sys = build(1505);
    let cutoff = sys.client.world().config.cutoff_day;
    let mut csr = sys.tkg.csr();
    let mut wide = WideCsr::from_store(&sys.tkg.graph);
    assert!(wide.agrees_with(&csr));

    // Grow the store window by window (the longitudinal protocol) and
    // delta-merge both layouts in lockstep. After every step the
    // merged compact CSR must agree with both the merged wide layout
    // and a from-scratch rebuild.
    let mut grew = false;
    for step in 0..3u32 {
        let (lo, hi) = (cutoff + step * 30, cutoff + (step + 1) * 30);
        let ingested = sys.ingest_window(lo, hi);
        grew |= !ingested.is_empty();
        csr = csr.merge_appended(&sys.tkg.graph);
        wide = wide.merge_appended(&sys.tkg.graph);
        assert!(wide.agrees_with(&csr), "merge step {step} diverged");
        assert!(
            WideCsr::from_store(&sys.tkg.graph).agrees_with(&csr),
            "merge step {step} disagrees with a fresh rebuild"
        );
    }
    assert!(grew, "fixture world has no post-cutoff reports to merge");
}
