//! The masked training protocol of Section VII-B.
//!
//! Event labels in the training fold are visible as input features
//! ("during validation, the event nodes in the training set are given
//! labels, and the validation nodes' labels are masked"); the model is
//! optimised with cross-entropy on train-fold event logits, early-
//! stopped on validation accuracy, then evaluated on the test fold with
//! all non-train labels hidden. Fine-tuning (a few epochs from the
//! previous month's weights) drives the Fig. 8 retraining study.

use rand::Rng;
use trail_graph::{Csr, EdgeKind, NodeId};
use trail_linalg::Matrix;
use trail_ml::nn::loss::{softmax_cross_entropy, softmax_cross_entropy_into};
use trail_ml::nn::Adam;

use crate::sage::{ensure_shape, SageConfig, SageModel};

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Adam learning rate (paper: 1e-4; scaled up at our reduced width).
    pub lr: f32,
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stop patience on validation accuracy (0 disables).
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 5e-3, epochs: 120, patience: 15 }
    }
}

/// Fine-tuning parameters (paper: "<10 epochs before convergence").
#[derive(Debug, Clone, Copy)]
pub struct FineTune {
    /// Learning rate for the continuation.
    pub lr: f32,
    /// Epochs.
    pub epochs: usize,
}

impl Default for FineTune {
    fn default() -> Self {
        Self { lr: 1e-3, epochs: 8 }
    }
}

/// Assemble the masked loss gradient for the labelled rows and return
/// `(loss, accuracy_on_rows, d_logits)`.
fn masked_loss(
    logits: &Matrix,
    labelled: &[(NodeId, u16)],
) -> (f32, f64, Matrix) {
    let rows: Vec<usize> = labelled.iter().map(|(id, _)| id.index()).collect();
    let y: Vec<u16> = labelled.iter().map(|&(_, c)| c).collect();
    let sub = logits.gather_rows(&rows);
    let pred: Vec<u16> = sub
        .rows_iter()
        .map(|r| trail_linalg::vector::argmax(r).unwrap_or(0) as u16)
        .collect();
    let acc = trail_ml::metrics::accuracy(&y, &pred);
    let (loss, d_sub) = softmax_cross_entropy(&sub, &y);
    let mut d_logits = Matrix::zeros(logits.rows(), logits.cols());
    for (i, &r) in rows.iter().enumerate() {
        d_logits.row_mut(r).copy_from_slice(d_sub.row(i));
    }
    (loss, acc, d_logits)
}

/// Reusable buffers for the per-epoch training round trip. Sized
/// lazily on first use; after that an epoch's loss/gradient assembly
/// performs no heap allocation (the computation itself runs in the
/// model's layer buffers).
struct EpochWorkspace {
    rows: Vec<usize>,
    y: Vec<u16>,
    pred: Vec<u16>,
    sub: Matrix,
    d_sub: Matrix,
    d_logits: Matrix,
}

impl EpochWorkspace {
    fn new() -> Self {
        Self {
            rows: Vec::new(),
            y: Vec::new(),
            pred: Vec::new(),
            sub: Matrix::zeros(0, 0),
            d_sub: Matrix::zeros(0, 0),
            d_logits: Matrix::zeros(0, 0),
        }
    }

    /// Buffered [`masked_loss`]: the gradient lands in
    /// `self.d_logits`; returns `(loss, accuracy_on_rows)`. Bitwise
    /// identical to the allocating form — the kernels zero their
    /// destinations before writing.
    fn masked_loss_into(&mut self, logits: &Matrix, labelled: &[(NodeId, u16)]) -> (f32, f64) {
        self.rows.clear();
        self.rows.extend(labelled.iter().map(|(id, _)| id.index()));
        self.y.clear();
        self.y.extend(labelled.iter().map(|&(_, c)| c));
        ensure_shape(&mut self.sub, labelled.len(), logits.cols());
        logits.gather_rows_into(&self.rows, &mut self.sub).expect("gather rows");
        self.pred.clear();
        self.pred.extend(
            self.sub.rows_iter().map(|r| trail_linalg::vector::argmax(r).unwrap_or(0) as u16),
        );
        let acc = trail_ml::metrics::accuracy(&self.y, &self.pred);
        ensure_shape(&mut self.d_sub, labelled.len(), logits.cols());
        let loss = softmax_cross_entropy_into(&self.sub, &self.y, &mut self.d_sub);
        ensure_shape(&mut self.d_logits, logits.rows(), logits.cols());
        self.d_logits.as_mut_slice().fill(0.0);
        for (i, &r) in self.rows.iter().enumerate() {
            self.d_logits.row_mut(r).copy_from_slice(self.d_sub.row(i));
        }
        (loss, acc)
    }
}

/// One masked-label training epoch: shuffle, hide target labels,
/// forward, masked loss, backward, step, restore labels. Every
/// intermediate lives in `ws`, `targets` or the model's layer
/// buffers, so the steady state (shapes unchanged since the previous
/// epoch) allocates nothing.
#[allow(clippy::too_many_arguments)]
fn masked_epoch<R: Rng + ?Sized>(
    rng: &mut R,
    model: &mut SageModel,
    csr: &Csr,
    x: &mut Matrix,
    train: &[(NodeId, u16)],
    order: &mut [usize],
    targets: &mut Vec<(NodeId, u16)>,
    n_targets: usize,
    masking: LabelMasking,
    adam: &mut Adam,
    ws: &mut EpochWorkspace,
) -> f32 {
    use rand::seq::SliceRandom;
    let _span = trail_obs::span("gnn.sage_epoch");
    order.shuffle(rng);
    targets.clear();
    targets.extend(order[..n_targets].iter().map(|&i| train[i]));
    // Hide target labels.
    for &(node, label) in targets.iter() {
        x[(node.index(), masking.offset + label as usize)] = 0.0;
    }
    let logits = model.forward_cached(csr, x, true);
    let (loss, _) = ws.masked_loss_into(logits, targets);
    model.backward(csr, &ws.d_logits);
    model.step(adam);
    // Restore target labels.
    for &(node, label) in targets.iter() {
        x[(node.index(), masking.offset + label as usize)] = 1.0;
    }
    loss
}

/// Label-as-feature masking parameters for [`train_sage_masked`].
#[derive(Debug, Clone, Copy)]
pub struct LabelMasking {
    /// Column offset of the one-hot label block in the input matrix.
    pub offset: usize,
    /// Fraction of train events whose labels stay visible per epoch;
    /// the rest have their label features zeroed and serve as targets.
    pub visible_fraction: f32,
}

/// Train GraphSAGE with masked-label supervision.
///
/// With labels embedded as input features, naive training lets the
/// model read each event's own label through the self term of the mean
/// aggregation and memorise the training set. Following the
/// masked-label-prediction recipe (Shi et al., UniMP), every epoch
/// splits the train events into a visible-context part and a target
/// part whose label features are zeroed — the model can only predict a
/// target from its neighbourhood, which is the test-time condition.
///
/// `x` must carry the label features of every *train* event (and only
/// those); target labels are masked/restored in place per epoch.
#[allow(clippy::too_many_arguments)]
pub fn train_sage_masked<R: Rng + ?Sized>(
    rng: &mut R,
    csr: &Csr,
    x: &mut Matrix,
    sage_cfg: SageConfig,
    train: &[(NodeId, u16)],
    val: &[(NodeId, u16)],
    cfg: &TrainConfig,
    masking: LabelMasking,
) -> (SageModel, Vec<f32>) {
    assert!(!train.is_empty());
    let mut model = SageModel::new(rng, sage_cfg);
    let mut adam = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::NEG_INFINITY;
    let mut since_best = 0usize;
    let mut best_snap = None;
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut targets = Vec::with_capacity(train.len());
    let mut ws = EpochWorkspace::new();
    let n_targets =
        ((train.len() as f32) * (1.0 - masking.visible_fraction)).round().max(1.0) as usize;
    for _epoch in 0..cfg.epochs {
        let loss = masked_epoch(
            rng,
            &mut model,
            csr,
            x,
            train,
            &mut order,
            &mut targets,
            n_targets,
            masking,
            &mut adam,
            &mut ws,
        );
        losses.push(loss);
        if cfg.patience > 0 && !val.is_empty() {
            let val_logits = model.forward(csr, x, false);
            let (_, val_acc, _) = masked_loss(&val_logits, val);
            if val_acc > best_val + 1e-9 {
                best_val = val_acc;
                since_best = 0;
                best_snap = Some(model.snapshot_params());
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    break;
                }
            }
        }
    }
    // Early stopping returns the weights of the best validation epoch,
    // not whatever the last `patience` epochs drifted to.
    if let Some(snap) = &best_snap {
        model.restore_params(snap);
    }
    (model, losses)
}

/// [`train_sage_masked`] on a sampled neighbourhood subgraph instead
/// of the full graph (the GraphSAGE mini-batch recipe).
///
/// The training loop only ever reads the `layers`-hop neighbourhood of
/// the supervised nodes, so the epochs run on the induced subgraph
/// around `train ∪ val` extracted by [`crate::sampler::sample_k_hop`]
/// with a per-node `neighbor_cap` (0 = uncapped, which still prunes
/// everything outside `layers` hops of a supervised node). Weight
/// shapes depend only on `sage_cfg`, so the returned model predicts on
/// the *full* graph unchanged.
///
/// Contract: this is an approximation, not an equivalence — capping
/// neighbourhoods changes the aggregation statistics, so accuracy is
/// only epsilon-close to full-graph training (see the fixture agreement
/// test gating the `--sampled` pipeline mode). Determinism still holds:
/// the subgraph and the training trajectory are pure functions of the
/// RNG state.
#[allow(clippy::too_many_arguments)]
pub fn train_sage_masked_sampled<R: Rng + ?Sized>(
    rng: &mut R,
    csr: &Csr,
    x: &Matrix,
    sage_cfg: SageConfig,
    train: &[(NodeId, u16)],
    val: &[(NodeId, u16)],
    cfg: &TrainConfig,
    masking: LabelMasking,
    neighbor_cap: usize,
) -> (SageModel, Vec<f32>) {
    assert!(!train.is_empty());
    let _span = trail_obs::span("gnn.sampled_train");
    let roots: Vec<NodeId> = train.iter().chain(val).map(|&(n, _)| n).collect();
    let sub =
        crate::sampler::sample_k_hop(rng, csr, &roots, sage_cfg.layers as u32, neighbor_cap);
    // Induced sub-CSR over local ids. Mean aggregation is kind-blind,
    // so any filler edge kind works.
    let edges: Vec<(NodeId, NodeId, EdgeKind)> = sub
        .edges
        .iter()
        .map(|&(a, b)| (NodeId(a as u32), NodeId(b as u32), EdgeKind::InReport))
        .collect();
    let sub_csr = Csr::from_edge_list(sub.len(), &edges);
    let rows: Vec<usize> = sub.nodes.iter().map(|n| n.index()).collect();
    let mut x_sub = x.gather_rows(&rows);
    let localise = |pairs: &[(NodeId, u16)]| -> Vec<(NodeId, u16)> {
        pairs.iter().map(|&(n, c)| (NodeId(sub.local_of[&n] as u32), c)).collect()
    };
    let train_sub = localise(train);
    let val_sub = localise(val);
    train_sage_masked(rng, &sub_csr, &mut x_sub, sage_cfg, &train_sub, &val_sub, cfg, masking)
}

/// Train a fresh GraphSAGE model.
///
/// `x` must already embed the *visible* labels (train-fold events) as
/// features; `train`/`val` carry the supervision targets.
pub fn train_sage<R: Rng + ?Sized>(
    rng: &mut R,
    csr: &Csr,
    x: &Matrix,
    sage_cfg: SageConfig,
    train: &[(NodeId, u16)],
    val: &[(NodeId, u16)],
    cfg: &TrainConfig,
) -> (SageModel, Vec<f32>) {
    let mut model = SageModel::new(rng, sage_cfg);
    let losses = continue_training(&mut model, csr, x, train, val, cfg.lr, cfg.epochs, cfg.patience);
    (model, losses)
}

/// Continue training an existing model on new labelled events with
/// per-epoch label masking (the monthly fine-tune of Fig. 8).
/// `x` must carry the label features of all visible events including
/// the new ones; targets' labels are hidden while they are predicted.
pub fn fine_tune_masked<R: Rng + ?Sized>(
    rng: &mut R,
    model: &mut SageModel,
    csr: &Csr,
    x: &mut Matrix,
    train: &[(NodeId, u16)],
    ft: &FineTune,
    masking: LabelMasking,
) -> Vec<f32> {
    assert!(!train.is_empty());
    let mut adam = Adam::new(ft.lr);
    model.reset_optimizer_state();
    let mut losses = Vec::with_capacity(ft.epochs);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut targets = Vec::with_capacity(train.len());
    let mut ws = EpochWorkspace::new();
    let n_targets =
        ((train.len() as f32) * (1.0 - masking.visible_fraction)).round().max(1.0) as usize;
    for _ in 0..ft.epochs {
        let loss = masked_epoch(
            rng,
            model,
            csr,
            x,
            train,
            &mut order,
            &mut targets,
            n_targets,
            masking,
            &mut adam,
            &mut ws,
        );
        losses.push(loss);
    }
    losses
}

/// Continue training an existing model (fine-tuning on a new month).
pub fn fine_tune(
    model: &mut SageModel,
    csr: &Csr,
    x: &Matrix,
    train: &[(NodeId, u16)],
    ft: &FineTune,
) -> Vec<f32> {
    continue_training(model, csr, x, train, &[], ft.lr, ft.epochs, 0)
}

#[allow(clippy::too_many_arguments)]
fn continue_training(
    model: &mut SageModel,
    csr: &Csr,
    x: &Matrix,
    train: &[(NodeId, u16)],
    val: &[(NodeId, u16)],
    lr: f32,
    epochs: usize,
    patience: usize,
) -> Vec<f32> {
    assert!(!train.is_empty(), "no labelled training events");
    let mut adam = Adam::new(lr);
    model.reset_optimizer_state();
    let mut losses = Vec::with_capacity(epochs);
    let mut best_val = f64::NEG_INFINITY;
    let mut since_best = 0usize;
    let mut best_snap = None;
    let mut ws = EpochWorkspace::new();
    for _epoch in 0..epochs {
        let _span = trail_obs::span("gnn.sage_epoch");
        let logits = model.forward_cached(csr, x, true);
        let (loss, _train_acc) = ws.masked_loss_into(logits, train);
        model.backward(csr, &ws.d_logits);
        model.step(&mut adam);
        losses.push(loss);
        if patience > 0 && !val.is_empty() {
            let val_logits = model.forward(csr, x, false);
            let (_, val_acc, _) = masked_loss(&val_logits, val);
            if val_acc > best_val + 1e-9 {
                best_val = val_acc;
                since_best = 0;
                best_snap = Some(model.snapshot_params());
            } else {
                since_best += 1;
                if since_best >= patience {
                    break;
                }
            }
        }
    }
    // Early stopping returns the weights of the best validation epoch.
    if let Some(snap) = &best_snap {
        model.restore_params(snap);
    }
    losses
}

/// Evaluate: predicted class and confidence for each target event.
pub fn predict_events(
    model: &mut SageModel,
    csr: &Csr,
    x: &Matrix,
    targets: &[NodeId],
) -> Vec<(u16, f32)> {
    let proba = model.predict_proba(csr, x);
    targets
        .iter()
        .map(|t| {
            let row = proba.row(t.index());
            let c = trail_linalg::vector::argmax(row).unwrap_or(0);
            (c as u16, row[c])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trail_graph::{EdgeKind, GraphStore, NodeKind};

    /// Two clusters of events: class-0 events share IP a, class-1 share
    /// IP b; features carry a weak class signal.
    fn clustered(n_per: usize) -> (GraphStore, Vec<(NodeId, u16)>) {
        let mut g = GraphStore::new();
        let ip_a = g.upsert_node(NodeKind::Ip, "10.0.0.1");
        let ip_b = g.upsert_node(NodeKind::Ip, "10.0.0.2");
        let mut events = Vec::new();
        for i in 0..n_per * 2 {
            let class = (i % 2) as u16;
            let e = g.upsert_node(NodeKind::Event, &format!("e{i}"));
            g.add_edge(e, if class == 0 { ip_a } else { ip_b }, EdgeKind::InReport).unwrap();
            events.push((e, class));
        }
        (g, events)
    }

    fn features(g: &GraphStore, events: &[(NodeId, u16)], visible: usize) -> Matrix {
        // 3 features: [is_event, label0_visible, label1_visible].
        let mut x = Matrix::zeros(g.node_count(), 3);
        for (i, &(id, class)) in events.iter().enumerate() {
            x[(id.index(), 0)] = 1.0;
            if i < visible {
                x[(id.index(), 1 + class as usize)] = 1.0;
            }
        }
        x
    }

    #[test]
    fn learns_clustered_events() {
        let (g, events) = clustered(8);
        let csr = Csr::from_store(&g);
        let x = features(&g, &events, 8); // first 8 labels visible
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SageConfig::new(3, 16, 2, 2);
        let train: Vec<_> = events[..8].to_vec();
        let test: Vec<_> = events[8..].to_vec();
        let (mut model, losses) = train_sage(
            &mut rng,
            &csr,
            &x,
            cfg,
            &train,
            &[],
            &TrainConfig { lr: 0.03, epochs: 80, patience: 0 },
        );
        assert!(losses.last().unwrap() < &losses[0]);
        let targets: Vec<NodeId> = test.iter().map(|&(id, _)| id).collect();
        let preds = predict_events(&mut model, &csr, &x, &targets);
        let correct = preds
            .iter()
            .zip(&test)
            .filter(|((p, _), (_, t))| p == t)
            .count();
        assert!(correct as f64 / test.len() as f64 > 0.8, "{correct}/{}", test.len());
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let (g, events) = clustered(6);
        let csr = Csr::from_store(&g);
        let x = features(&g, &events, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SageConfig::new(3, 8, 2, 2);
        let train: Vec<_> = events[..6].to_vec();
        let val: Vec<_> = events[6..9].to_vec();
        let (_, losses) = train_sage(
            &mut rng,
            &csr,
            &x,
            cfg,
            &train,
            &val,
            &TrainConfig { lr: 0.05, epochs: 500, patience: 5 },
        );
        assert!(losses.len() < 500, "never early-stopped");
    }

    #[test]
    fn early_stopping_returns_best_validation_weights() {
        // `continue_training` consumes no rng after model init, so two
        // runs from the same seed follow bitwise-identical parameter
        // trajectories. Train once with patience to get the stop epoch,
        // then replay exactly that many epochs with patience 0 to
        // materialise the *last-epoch* model, and check the early-stop
        // return is at least as good on validation.
        let (g, events) = clustered(6);
        let csr = Csr::from_store(&g);
        let x = features(&g, &events, 6);
        let cfg = SageConfig::new(3, 8, 2, 2);
        let train: Vec<_> = events[..6].to_vec();
        let val: Vec<_> = events[6..9].to_vec();
        let seed = 2;
        let (mut stopped, losses) = train_sage(
            &mut StdRng::seed_from_u64(seed),
            &csr,
            &x,
            cfg,
            &train,
            &val,
            &TrainConfig { lr: 0.05, epochs: 500, patience: 5 },
        );
        assert!(losses.len() < 500, "never early-stopped");
        let (mut last_epoch, replay) = train_sage(
            &mut StdRng::seed_from_u64(seed),
            &csr,
            &x,
            cfg,
            &train,
            &val,
            &TrainConfig { lr: 0.05, epochs: losses.len(), patience: 0 },
        );
        assert_eq!(replay, losses, "replay diverged; epochs are not deterministic");
        let val_acc = |m: &mut SageModel| {
            let logits = m.forward(&csr, &x, false);
            masked_loss(&logits, &val).1
        };
        let stopped_acc = val_acc(&mut stopped);
        let last_acc = val_acc(&mut last_epoch);
        assert!(
            stopped_acc >= last_acc,
            "early-stop model ({stopped_acc}) scores worse on val than last epoch ({last_acc})"
        );
    }

    #[test]
    fn sampled_training_learns_and_predicts_on_the_full_graph() {
        let (g, events) = clustered(8);
        let csr = Csr::from_store(&g);
        let mut x = features(&g, &events, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SageConfig::new(3, 16, 2, 2);
        let train: Vec<_> = events[..8].to_vec();
        let test: Vec<_> = events[8..].to_vec();
        let masking = LabelMasking { offset: 1, visible_fraction: 0.5 };
        let (mut model, losses) = train_sage_masked_sampled(
            &mut rng,
            &csr,
            &x,
            cfg,
            &train,
            &[],
            &TrainConfig { lr: 0.03, epochs: 80, patience: 0 },
            masking,
            0, // uncapped: subgraph = 2-hop closure of the train events
        );
        assert!(losses.last().unwrap() < &losses[0]);
        // The returned model scores nodes of the FULL graph: make every
        // train label visible and predict the held-out events.
        for &(id, class) in &train {
            x[(id.index(), 1 + class as usize)] = 1.0;
        }
        let targets: Vec<NodeId> = test.iter().map(|&(id, _)| id).collect();
        let preds = predict_events(&mut model, &csr, &x, &targets);
        let correct =
            preds.iter().zip(&test).filter(|((p, _), (_, t))| p == t).count();
        assert!(correct as f64 / test.len() as f64 > 0.8, "{correct}/{}", test.len());
    }

    #[test]
    fn sampled_training_with_a_cap_still_runs_and_learns() {
        let (g, events) = clustered(8);
        let csr = Csr::from_store(&g);
        let x = features(&g, &events, 8);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SageConfig::new(3, 16, 2, 2);
        let train: Vec<_> = events[..8].to_vec();
        let val: Vec<_> = events[8..12].to_vec();
        let masking = LabelMasking { offset: 1, visible_fraction: 0.5 };
        let (_, losses) = train_sage_masked_sampled(
            &mut rng,
            &csr,
            &x,
            cfg,
            &train,
            &val,
            &TrainConfig { lr: 0.03, epochs: 60, patience: 10 },
            masking,
            3, // each expanded node keeps at most 3 neighbours
        );
        assert!(!losses.is_empty());
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn sampled_training_is_deterministic_for_a_fixed_seed() {
        let (g, events) = clustered(6);
        let csr = Csr::from_store(&g);
        let x = features(&g, &events, 6);
        let cfg = SageConfig::new(3, 8, 2, 2);
        let train: Vec<_> = events[..6].to_vec();
        let masking = LabelMasking { offset: 1, visible_fraction: 0.5 };
        let tc = TrainConfig { lr: 0.03, epochs: 20, patience: 0 };
        let run = |seed: u64| {
            train_sage_masked_sampled(
                &mut StdRng::seed_from_u64(seed),
                &csr,
                &x,
                cfg,
                &train,
                &[],
                &tc,
                masking,
                2,
            )
        };
        let (ma, la) = run(11);
        let (mb, lb) = run(11);
        assert_eq!(la, lb, "loss trajectories diverged at the same seed");
        for ((ra, na, ba), (rb, nb, bb)) in ma.weights().into_iter().zip(mb.weights()) {
            assert_eq!(ra, rb);
            assert_eq!(na, nb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn fine_tuning_reduces_loss_on_new_data() {
        let (g, events) = clustered(8);
        let csr = Csr::from_store(&g);
        let x = features(&g, &events, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SageConfig::new(3, 16, 2, 2);
        let train: Vec<_> = events[..8].to_vec();
        let (mut model, _) = train_sage(
            &mut rng,
            &csr,
            &x,
            cfg,
            &train,
            &[],
            &TrainConfig { lr: 0.03, epochs: 40, patience: 0 },
        );
        // Fine-tune on the remaining events as "new month" data.
        let new_data: Vec<_> = events[8..].to_vec();
        let losses = fine_tune(&mut model, &csr, &x, &new_data, &FineTune { lr: 0.01, epochs: 8 });
        assert_eq!(losses.len(), 8);
        assert!(losses.last().unwrap() <= &losses[0]);
    }

    /// A model rebuilt from saved weights alone must fine-tune along
    /// the exact trajectory of the original — i.e. optimiser moments
    /// from earlier training must not leak into the next fine-tune
    /// pass. This is what makes a weight-only checkpoint sufficient
    /// for bitwise crash recovery.
    #[test]
    fn fine_tuning_a_weight_restored_model_is_bitwise_identical() {
        let (g, events) = clustered(8);
        let csr = Csr::from_store(&g);
        let cfg = SageConfig::new(3, 16, 2, 2);
        let train: Vec<_> = events[..8].to_vec();
        let (mut original, _) = train_sage(
            &mut StdRng::seed_from_u64(4),
            &csr,
            &features(&g, &events, 8),
            cfg,
            &train,
            &[],
            &TrainConfig { lr: 0.03, epochs: 40, patience: 0 },
        );
        // Rebuild from weight values only, as checkpoint restore does.
        let mut restored = SageModel::new(&mut StdRng::seed_from_u64(999), cfg);
        for (l, (w_root, w_nbr, b)) in original.weights().into_iter().enumerate() {
            let (w_root, w_nbr, b) = (w_root.clone(), w_nbr.clone(), b.clone());
            restored.set_layer_weights(l, w_root, w_nbr, b);
        }
        let new_data: Vec<_> = events[8..].to_vec();
        let masking = LabelMasking { offset: 1, visible_fraction: 0.5 };
        let ft = FineTune { lr: 0.01, epochs: 6 };
        let mut x_a = features(&g, &events, events.len());
        let mut x_b = x_a.clone();
        let losses_a = fine_tune_masked(
            &mut StdRng::seed_from_u64(7),
            &mut original,
            &csr,
            &mut x_a,
            &new_data,
            &ft,
            masking,
        );
        let losses_b = fine_tune_masked(
            &mut StdRng::seed_from_u64(7),
            &mut restored,
            &csr,
            &mut x_b,
            &new_data,
            &ft,
            masking,
        );
        assert_eq!(losses_a, losses_b, "loss trajectories diverged");
        for (la, lb) in original.weights().into_iter().zip(restored.weights()) {
            assert_eq!(la, lb, "fine-tuned weights diverged after restore");
        }
    }
}
