//! Graph-substrate micro-benchmarks: TKG construction, CSR freeze,
//! traversal and component analysis at reproduction scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use trail::system::TrailSystem;
use trail_graph::algo::{connected_components, diameter_double_sweep, k_hop};
use trail_graph::{Csr, NodeId};
use trail_osint::{OsintClient, World, WorldConfig};

fn build_system(scale: f32) -> TrailSystem {
    let cfg = WorldConfig::default().scaled(scale);
    let client = OsintClient::new(Arc::new(World::generate(cfg)));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tkg_construction");
    group.sample_size(10);
    for scale in [0.1f32, 0.25] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| {
                let sys = build_system(s);
                std::hint::black_box(sys.tkg.graph.node_count())
            });
        });
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let sys = build_system(0.25);
    let csr = sys.tkg.csr();
    let roots: Vec<NodeId> = sys.tkg.events.iter().take(8).map(|e| e.node).collect();

    let mut group = c.benchmark_group("graph_algorithms");
    group.bench_function("csr_freeze", |b| {
        b.iter(|| std::hint::black_box(Csr::from_store(&sys.tkg.graph).node_count()))
    });
    group.bench_function("k_hop_2", |b| {
        b.iter(|| std::hint::black_box(k_hop(&csr, &roots, 2).len()))
    });
    group.bench_function("k_hop_3", |b| {
        b.iter(|| std::hint::black_box(k_hop(&csr, &roots, 3).len()))
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| std::hint::black_box(connected_components(&csr).count()))
    });
    group.bench_function("diameter_double_sweep", |b| {
        b.iter(|| std::hint::black_box(diameter_double_sweep(&csr, roots[0], 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_traversal);
criterion_main!(benches);
