//! Attribution pipelines (paper Sections VI–VII).
//!
//! * Individual-IOC attribution (Table III): per-kind XGB / NN / RF
//!   classifiers over first-order, single-label IOCs, with standard
//!   scaling and SMOTE, under stratified k-fold CV.
//! * Event attribution (Table IV): per-IOC classifiers + mode voting,
//!   label propagation at 2/3/4 layers, and GraphSAGE at 2/3/4 layers
//!   under the masked-fold protocol.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use trail_graph::NodeId;
use trail_ioc::IocKind;
use trail_linalg::Matrix;
use trail_ml::dataset::{Dataset, StratifiedKFold};
use trail_ml::forest::ForestConfig;
use trail_ml::gbt::GbtConfig;
use trail_ml::metrics::{accuracy, balanced_accuracy};
use trail_ml::nn::{Mlp, MlpConfig};
use trail_ml::smote::{smote, SmoteConfig};
use trail_ml::{Classifier, GradientBoostedTrees, RandomForest, StandardScaler};

use crate::embed::{assemble_gnn_input, NodeEmbeddings};
use crate::sparse::{densify, SparseRef};
use crate::tkg::Tkg;

/// Which classical model family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Gradient-boosted trees (the paper's XGB).
    Xgb,
    /// Multilayer perceptron.
    Nn,
    /// Random forest.
    Rf,
}

impl ModelKind {
    /// All model families in Table III/IV order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Xgb, ModelKind::Nn, ModelKind::Rf];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Xgb => "XGB",
            ModelKind::Nn => "NN",
            ModelKind::Rf => "RF",
        }
    }
}

/// Hyper-parameters for the classical models, sized for the default
/// reproduction scale (the paper's full-width NN is available via
/// [`MlpConfig::paper`]).
#[derive(Debug, Clone)]
pub struct IocModelSettings {
    /// XGB parameters.
    pub gbt: GbtConfig,
    /// Random-forest parameters.
    pub forest: ForestConfig,
    /// MLP parameters.
    pub mlp: MlpConfig,
    /// Apply SMOTE oversampling to the training fold.
    pub smote: bool,
    /// Subsample cap per IOC dataset (0 = unlimited).
    pub max_samples: usize,
}

impl Default for IocModelSettings {
    fn default() -> Self {
        Self {
            gbt: GbtConfig { n_rounds: 10, max_depth: 5, colsample: 0.15, subsample: 0.8, ..Default::default() },
            forest: ForestConfig { n_trees: 25, ..Default::default() },
            mlp: MlpConfig {
                hidden: vec![128, 64],
                dropout: 0.5,
                dropout_layers: 2,
                lr: 1e-3,
                epochs: 8,
                batch_size: 128,
            },
            smote: true,
            max_samples: 6_000,
        }
    }
}

impl IocModelSettings {
    /// Fast settings for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            gbt: GbtConfig { n_rounds: 4, max_depth: 4, colsample: 0.2, ..Default::default() },
            forest: ForestConfig { n_trees: 8, ..Default::default() },
            mlp: MlpConfig { hidden: vec![32], dropout: 0.1, dropout_layers: 1, lr: 3e-3, epochs: 4, batch_size: 64 },
            smote: true,
            max_samples: 1_500,
        }
    }
}

/// A trained classical model of any family.
pub enum IocModel {
    /// Gradient-boosted trees.
    Xgb(GradientBoostedTrees),
    /// MLP.
    Nn(Mlp),
    /// Random forest.
    Rf(RandomForest),
}

impl IocModel {
    /// Train the requested family.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        kind: ModelKind,
        x: &Matrix,
        y: &[u16],
        n_classes: usize,
        settings: &IocModelSettings,
    ) -> Self {
        match kind {
            ModelKind::Xgb => {
                IocModel::Xgb(GradientBoostedTrees::fit(rng, x, y, n_classes, &settings.gbt))
            }
            ModelKind::Nn => IocModel::Nn(Mlp::fit(rng, x, y, n_classes, &settings.mlp)),
            ModelKind::Rf => IocModel::Rf(RandomForest::fit(rng, x, y, n_classes, &settings.forest)),
        }
    }

    /// Hard predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<u16> {
        match self {
            IocModel::Xgb(m) => m.predict(x),
            IocModel::Nn(m) => m.predict(x),
            IocModel::Rf(m) => m.predict(x),
        }
    }
}

/// A per-kind IOC dataset extracted from the TKG.
pub struct IocDataset {
    /// IOC kind.
    pub kind: IocKind,
    /// Dense features + labels.
    pub data: Dataset,
    /// Graph node of each sample row.
    pub nodes: Vec<NodeId>,
}

/// Extract the Table III datasets: first-order IOCs linked to exactly
/// one APT, with stored features. Subsampled to `max_samples` per kind
/// when set (stratification by shuffle-truncate).
pub fn ioc_datasets<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    max_samples: usize,
) -> Vec<IocDataset> {
    IocKind::ALL
        .iter()
        .map(|&kind| {
            let mut samples: Vec<(NodeId, u16)> = tkg
                .featured_nodes(kind)
                .into_iter()
                .filter(|&(id, _)| tkg.graph.node(id).first_order())
                .filter_map(|(id, _)| match tkg.reporting_apts(id).as_slice() {
                    [one] => Some((id, *one)),
                    _ => None,
                })
                .collect();
            samples.shuffle(rng);
            if max_samples > 0 {
                samples.truncate(max_samples);
            }
            let dims = Tkg::dims_of(kind);
            let rows: Vec<SparseRef<'_>> =
                samples.iter().map(|&(id, _)| tkg.features(id).expect("featured")).collect();
            let x = densify(&rows, dims);
            let y: Vec<u16> = samples.iter().map(|&(_, apt)| apt).collect();
            IocDataset {
                kind,
                data: Dataset::new(x, y, tkg.n_classes()),
                nodes: samples.into_iter().map(|(id, _)| id).collect(),
            }
        })
        .collect()
}

/// Per-fold accuracy scores.
#[derive(Debug, Clone, Default)]
pub struct FoldScores {
    /// Plain accuracy per fold.
    pub acc: Vec<f64>,
    /// Balanced accuracy per fold.
    pub bacc: Vec<f64>,
}

impl FoldScores {
    /// `(mean, std)` of plain accuracy.
    pub fn acc_mean_std(&self) -> (f64, f64) {
        trail_ml::metrics::mean_std(&self.acc)
    }

    /// `(mean, std)` of balanced accuracy.
    pub fn bacc_mean_std(&self) -> (f64, f64) {
        trail_ml::metrics::mean_std(&self.bacc)
    }
}

/// Preprocess a training fold: fit scaler, scale, optionally SMOTE.
fn preprocess_fold<R: Rng + ?Sized>(
    rng: &mut R,
    data: &Dataset,
    train_idx: &[usize],
    do_smote: bool,
) -> (StandardScaler, Dataset) {
    let train = data.subset(train_idx);
    let (scaler, x_scaled) = StandardScaler::fit_transform(&train.x);
    let mut scaled = Dataset::new(x_scaled, train.y.clone(), train.n_classes);
    if do_smote {
        scaled = smote(rng, &scaled, SmoteConfig::default());
    }
    (scaler, scaled)
}

/// Tune XGB or RF hyper-parameters with TPE (paper Section VI-A:
/// "the hyperparameters were optimized using the Tree of Parzen
/// Estimators (TPE) method provided by Hyperopt").
///
/// The objective is negative mean CV accuracy on a *tuning* split;
/// returns the best settings found (other fields copied from `base`).
pub fn tune_with_tpe<R: Rng + ?Sized>(
    rng: &mut R,
    ds: &IocDataset,
    model: ModelKind,
    base: &IocModelSettings,
    n_trials: usize,
) -> IocModelSettings {
    use trail_ml::hyperopt::{ParamSpec, Tpe};
    let mut tuned = base.clone();
    match model {
        ModelKind::Xgb => {
            let mut tpe = Tpe::new(vec![
                ("n_rounds".into(), ParamSpec::Int(4, 24)),
                ("max_depth".into(), ParamSpec::Int(3, 8)),
                ("learning_rate".into(), ParamSpec::LogUniform(0.05, 0.6)),
                ("colsample".into(), ParamSpec::Uniform(0.05, 0.5)),
            ]);
            let best = {
                let mut eval_rng = rand::rngs::StdRng::seed_from_u64(rng.gen());
                tpe.run(rng, n_trials, |v| {
                    let mut settings = base.clone();
                    settings.gbt.n_rounds = v[0] as usize;
                    settings.gbt.max_depth = v[1] as usize;
                    settings.gbt.learning_rate = v[2];
                    settings.gbt.colsample = v[3];
                    let scores = crossval_ioc(&mut eval_rng, ds, ModelKind::Xgb, &settings, 2);
                    -scores.acc_mean_std().0
                })
            };
            tuned.gbt.n_rounds = best.values[0] as usize;
            tuned.gbt.max_depth = best.values[1] as usize;
            tuned.gbt.learning_rate = best.values[2];
            tuned.gbt.colsample = best.values[3];
        }
        ModelKind::Rf => {
            let mut tpe = Tpe::new(vec![
                ("n_trees".into(), ParamSpec::Int(8, 64)),
                ("max_depth".into(), ParamSpec::Int(6, 24)),
                ("min_samples_leaf".into(), ParamSpec::Int(1, 8)),
            ]);
            let best = {
                let mut eval_rng = rand::rngs::StdRng::seed_from_u64(rng.gen());
                tpe.run(rng, n_trials, |v| {
                    let mut settings = base.clone();
                    settings.forest.n_trees = v[0] as usize;
                    settings.forest.tree.max_depth = v[1] as usize;
                    settings.forest.tree.min_samples_leaf = v[2] as usize;
                    let scores = crossval_ioc(&mut eval_rng, ds, ModelKind::Rf, &settings, 2);
                    -scores.acc_mean_std().0
                })
            };
            tuned.forest.n_trees = best.values[0] as usize;
            tuned.forest.tree.max_depth = best.values[1] as usize;
            tuned.forest.tree.min_samples_leaf = best.values[2] as usize;
        }
        ModelKind::Nn => {
            let mut tpe = Tpe::new(vec![
                ("lr".into(), ParamSpec::LogUniform(1e-4, 1e-2)),
                ("epochs".into(), ParamSpec::Int(4, 20)),
            ]);
            let best = {
                let mut eval_rng = rand::rngs::StdRng::seed_from_u64(rng.gen());
                tpe.run(rng, n_trials, |v| {
                    let mut settings = base.clone();
                    settings.mlp.lr = v[0];
                    settings.mlp.epochs = v[1] as usize;
                    let scores = crossval_ioc(&mut eval_rng, ds, ModelKind::Nn, &settings, 2);
                    -scores.acc_mean_std().0
                })
            };
            tuned.mlp.lr = best.values[0];
            tuned.mlp.epochs = best.values[1] as usize;
        }
    }
    tuned
}

/// Cross-validate one model family on one IOC dataset (Table III cell).
pub fn crossval_ioc<R: Rng + ?Sized>(
    rng: &mut R,
    ds: &IocDataset,
    model: ModelKind,
    settings: &IocModelSettings,
    k: usize,
) -> FoldScores {
    let mut scores = FoldScores::default();
    let kf = StratifiedKFold::new(rng, &ds.data.y, ds.data.n_classes, k);
    for (train_idx, test_idx) in kf.splits() {
        let (scaler, train) = preprocess_fold(rng, &ds.data, &train_idx, settings.smote);
        let clf = IocModel::fit(rng, model, &train.x, &train.y, ds.data.n_classes, settings);
        let test = ds.data.subset(&test_idx);
        let x_test = scaler.transform(&test.x);
        let pred = clf.predict(&x_test);
        scores.acc.push(accuracy(&test.y, &pred));
        scores.bacc.push(balanced_accuracy(&test.y, &pred, ds.data.n_classes));
    }
    scores
}

// ---------------------------------------------------------------------------
// Event attribution (Table IV)
// ---------------------------------------------------------------------------

/// Stratified folds over the TKG's events, returned as index lists into
/// `tkg.events`.
pub fn event_folds<R: Rng + ?Sized>(rng: &mut R, tkg: &Tkg, k: usize) -> StratifiedKFold {
    let y: Vec<u16> = tkg.events.iter().map(|e| e.apt).collect();
    StratifiedKFold::new(rng, &y, tkg.n_classes(), k)
}

/// Classify each test event by majority vote over per-IOC predictions
/// from per-kind models trained on the train fold's IOCs (Table IV rows
/// XGB/NN/RF).
pub fn eval_event_ml<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    model: ModelKind,
    settings: &IocModelSettings,
    k: usize,
) -> FoldScores {
    let mut scores = FoldScores::default();
    let kf = event_folds(rng, tkg, k);
    for (train_ev, test_ev) in kf.splits() {
        let train_events: std::collections::HashSet<NodeId> =
            train_ev.iter().map(|&i| tkg.events[i].node).collect();
        // Per-kind training data: first-order IOCs reported exclusively
        // by train-fold events, labelled by their (single) APT.
        let mut models: Vec<Option<(StandardScaler, IocModel)>> = Vec::new();
        for kind in IocKind::ALL {
            let mut samples: Vec<(NodeId, u16)> = Vec::new();
            for (id, _) in tkg.featured_nodes(kind) {
                if !tkg.graph.node(id).first_order() {
                    continue;
                }
                let reporters: Vec<NodeId> = tkg
                    .graph
                    .in_neighbors(id)
                    .iter()
                    .filter(|(_, ek)| *ek == trail_graph::EdgeKind::InReport)
                    .map(|&(src, _)| src)
                    .collect();
                if !reporters.iter().all(|r| train_events.contains(r)) {
                    continue;
                }
                match tkg.reporting_apts(id).as_slice() {
                    [one] => samples.push((id, *one)),
                    _ => {}
                }
            }
            samples.shuffle(rng);
            if settings.max_samples > 0 {
                samples.truncate(settings.max_samples);
            }
            if samples.len() < tkg.n_classes() {
                models.push(None);
                continue;
            }
            let dims = Tkg::dims_of(kind);
            let rows: Vec<SparseRef<'_>> =
                samples.iter().map(|&(id, _)| tkg.features(id).expect("featured")).collect();
            let x = densify(&rows, dims);
            let y: Vec<u16> = samples.iter().map(|&(_, apt)| apt).collect();
            let data = Dataset::new(x, y, tkg.n_classes());
            let all: Vec<usize> = (0..data.len()).collect();
            let (scaler, train) = preprocess_fold(rng, &data, &all, settings.smote);
            let clf = IocModel::fit(rng, model, &train.x, &train.y, tkg.n_classes(), settings);
            models.push(Some((scaler, clf)));
        }
        // Majority class of the train fold, the fallback for events with
        // no usable IOC predictions.
        let majority = {
            let mut counts = vec![0usize; tkg.n_classes()];
            for &i in &train_ev {
                counts[tkg.events[i].apt as usize] += 1;
            }
            counts.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(c, _)| c as u16).unwrap_or(0)
        };
        // Vote per test event.
        let mut truth = Vec::with_capacity(test_ev.len());
        let mut pred = Vec::with_capacity(test_ev.len());
        for &ei in &test_ev {
            let info = &tkg.events[ei];
            let mut votes = vec![0usize; tkg.n_classes()];
            let mut any = false;
            for kind in IocKind::ALL {
                let Some((scaler, clf)) = &models[kind_slot(kind)] else { continue };
                let iocs: Vec<NodeId> = tkg
                    .graph
                    .out_neighbors(info.node)
                    .iter()
                    .filter(|&&(dst, ek)| {
                        ek == trail_graph::EdgeKind::InReport
                            && tkg.graph.node(dst).kind == Tkg::node_kind(kind)
                            && tkg.has_features(dst)
                    })
                    .map(|&(dst, _)| dst)
                    .collect();
                if iocs.is_empty() {
                    continue;
                }
                let rows: Vec<SparseRef<'_>> =
                    iocs.iter().map(|&id| tkg.features(id).expect("featured")).collect();
                let x = scaler.transform(&densify(&rows, Tkg::dims_of(kind)));
                for p in clf.predict(&x) {
                    votes[p as usize] += 1;
                    any = true;
                }
            }
            let p = if any {
                votes.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(c, _)| c as u16).unwrap()
            } else {
                majority
            };
            truth.push(info.apt);
            pred.push(p);
        }
        scores.acc.push(accuracy(&truth, &pred));
        scores.bacc.push(balanced_accuracy(&truth, &pred, tkg.n_classes()));
    }
    scores
}

fn kind_slot(kind: IocKind) -> usize {
    match kind {
        IocKind::Ip => 0,
        IocKind::Url => 1,
        IocKind::Domain => 2,
    }
}

/// Label propagation at `layers` iterations (Table IV rows LP 2L/3L/4L).
/// Unreachable test events count as misclassified.
pub fn eval_event_lp<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    layers: usize,
    k: usize,
) -> FoldScores {
    let csr = tkg.csr();
    let lp = trail_gnn::LabelPropagation::new(&csr, tkg.n_classes());
    let mut scores = FoldScores::default();
    let kf = event_folds(rng, tkg, k);
    for (train_ev, test_ev) in kf.splits() {
        let mut seeds = vec![None; tkg.graph.node_count()];
        for &i in &train_ev {
            seeds[tkg.events[i].node.index()] = Some(tkg.events[i].apt);
        }
        let targets: Vec<NodeId> = test_ev.iter().map(|&i| tkg.events[i].node).collect();
        let preds = lp.predict(&seeds, layers, &targets);
        let truth: Vec<u16> = test_ev.iter().map(|&i| tkg.events[i].apt).collect();
        let pred: Vec<u16> = preds
            .iter()
            .map(|p| p.unwrap_or(u16::MAX)) // unattributed = wrong
            .collect();
        scores.acc.push(accuracy(&truth, &pred));
        scores.bacc.push(balanced_accuracy_with_sentinel(&truth, &pred, tkg.n_classes()));
    }
    scores
}

/// Balanced accuracy tolerant of the `u16::MAX` "unattributed" sentinel.
fn balanced_accuracy_with_sentinel(truth: &[u16], pred: &[u16], n_classes: usize) -> f64 {
    let clean: Vec<u16> =
        pred.iter().map(|&p| if p == u16::MAX { n_classes as u16 } else { p }).collect();
    balanced_accuracy(truth, &clean, n_classes + 1)
}

/// GNN training/evaluation parameters for Table IV.
#[derive(Debug, Clone, Copy)]
pub struct GnnEvalConfig {
    /// Hidden width of the SAGE layers.
    pub hidden: usize,
    /// Training parameters.
    pub train: trail_gnn::TrainConfig,
    /// Fraction of the train fold held out as validation.
    pub val_fraction: f32,
    /// Per-layer L2 normalisation (paper Eq. 4); exposed for the
    /// DESIGN.md ablation.
    pub l2_normalize: bool,
    /// Fraction of train-event labels visible per masked-training
    /// epoch (the rest are that epoch's prediction targets).
    pub label_visible_fraction: f32,
    /// Opt-in sampled mini-batch training: `Some(cap)` trains on the
    /// capped k-hop neighbourhood subgraph of the supervised events
    /// (`trail_gnn::train_sage_masked_sampled`) instead of the full
    /// graph; prediction always runs full-graph. `None` (the default)
    /// keeps the exact full-graph protocol.
    pub sampled_neighbor_cap: Option<usize>,
}

impl Default for GnnEvalConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            train: trail_gnn::TrainConfig { lr: 2e-2, epochs: 200, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: false,
            label_visible_fraction: 0.7,
            sampled_neighbor_cap: None,
        }
    }
}

/// GraphSAGE at `layers` (Table IV rows GNN 2L/3L/4L).
pub fn eval_event_gnn<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    embeddings: &NodeEmbeddings,
    layers: usize,
    cfg: &GnnEvalConfig,
    k: usize,
) -> FoldScores {
    let csr = tkg.csr();
    let mut scores = FoldScores::default();
    let kf = event_folds(rng, tkg, k);
    for (mut train_ev, test_ev) in kf.splits() {
        // Carve a validation subset out of the train fold.
        train_ev.shuffle(rng);
        let n_val = ((train_ev.len() as f32) * cfg.val_fraction).round() as usize;
        let val_ev: Vec<usize> = train_ev.split_off(train_ev.len().saturating_sub(n_val));

        let pairs = |idx: &[usize]| -> Vec<(NodeId, u16)> {
            idx.iter().map(|&i| (tkg.events[i].node, tkg.events[i].apt)).collect()
        };
        let train_pairs = pairs(&train_ev);
        let val_pairs = pairs(&val_ev);
        let test_pairs = pairs(&test_ev);

        // Training input: only train labels visible; per-epoch masking
        // prevents the self-label shortcut (see train_sage_masked).
        let mut x_train = assemble_gnn_input(tkg, embeddings, &train_pairs);
        let sage_cfg = trail_gnn::SageConfig {
            input_dim: x_train.cols(),
            hidden: cfg.hidden,
            layers,
            n_classes: tkg.n_classes(),
            l2_normalize: cfg.l2_normalize,
        };
        let masking = trail_gnn::LabelMasking {
            offset: embeddings.code_dim + 5,
            visible_fraction: cfg.label_visible_fraction,
        };
        let (mut model, _) = match cfg.sampled_neighbor_cap {
            Some(cap) => trail_gnn::train_sage_masked_sampled(
                rng,
                &csr,
                &x_train,
                sage_cfg,
                &train_pairs,
                &val_pairs,
                &cfg.train,
                masking,
                cap,
            ),
            None => trail_gnn::train_sage_masked(
                rng,
                &csr,
                &mut x_train,
                sage_cfg,
                &train_pairs,
                &val_pairs,
                &cfg.train,
                masking,
            ),
        };

        // Test input: train + val labels visible, test masked.
        let visible: Vec<(NodeId, u16)> =
            train_pairs.iter().chain(&val_pairs).copied().collect();
        let x_test = assemble_gnn_input(tkg, embeddings, &visible);
        let targets: Vec<NodeId> = test_pairs.iter().map(|&(n, _)| n).collect();
        let preds = trail_gnn::train::predict_events(&mut model, &csr, &x_test, &targets);
        let truth: Vec<u16> = test_pairs.iter().map(|&(_, c)| c).collect();
        let pred: Vec<u16> = preds.iter().map(|&(c, _)| c).collect();
        scores.acc.push(accuracy(&truth, &pred));
        scores.bacc.push(balanced_accuracy(&truth, &pred, tkg.n_classes()));
    }
    scores
}

/// GraphSAGE with confidence thresholding (the paper's Section IX
/// future-work direction): events whose top-class probability falls
/// below `threshold` are left unattributed. Returns
/// `(precision on attributed events, coverage)` averaged over folds.
#[allow(clippy::too_many_arguments)]
pub fn eval_event_gnn_thresholded<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    embeddings: &NodeEmbeddings,
    layers: usize,
    cfg: &GnnEvalConfig,
    k: usize,
    threshold: f32,
) -> (f64, f64) {
    let csr = tkg.csr();
    let kf = event_folds(rng, tkg, k);
    let mut precisions = Vec::new();
    let mut coverages = Vec::new();
    for (train_ev, test_ev) in kf.splits() {
        let train_pairs: Vec<(NodeId, u16)> =
            train_ev.iter().map(|&i| (tkg.events[i].node, tkg.events[i].apt)).collect();
        let mut x = assemble_gnn_input(tkg, embeddings, &train_pairs);
        let sage_cfg = trail_gnn::SageConfig {
            input_dim: x.cols(),
            hidden: cfg.hidden,
            layers,
            n_classes: tkg.n_classes(),
            l2_normalize: cfg.l2_normalize,
        };
        let masking = trail_gnn::LabelMasking {
            offset: embeddings.code_dim + 5,
            visible_fraction: cfg.label_visible_fraction,
        };
        let (mut model, _) = match cfg.sampled_neighbor_cap {
            Some(cap) => trail_gnn::train_sage_masked_sampled(
                rng, &csr, &x, sage_cfg, &train_pairs, &[], &cfg.train, masking, cap,
            ),
            None => trail_gnn::train_sage_masked(
                rng, &csr, &mut x, sage_cfg, &train_pairs, &[], &cfg.train, masking,
            ),
        };
        let targets: Vec<NodeId> = test_ev.iter().map(|&i| tkg.events[i].node).collect();
        let preds = trail_gnn::train::predict_events(&mut model, &csr, &x, &targets);
        let mut attributed = 0usize;
        let mut correct = 0usize;
        for (&ei, &(pred, conf)) in test_ev.iter().zip(&preds) {
            if conf >= threshold {
                attributed += 1;
                if pred == tkg.events[ei].apt {
                    correct += 1;
                }
            }
        }
        coverages.push(attributed as f64 / test_ev.len().max(1) as f64);
        precisions.push(if attributed > 0 { correct as f64 / attributed as f64 } else { 0.0 });
    }
    (
        precisions.iter().sum::<f64>() / precisions.len().max(1) as f64,
        coverages.iter().sum::<f64>() / coverages.len().max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TrailSystem;
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;
    use trail_osint::{OsintClient, World, WorldConfig};

    fn tiny_system() -> TrailSystem {
        let world = Arc::new(World::generate(WorldConfig::tiny(77)));
        let client = OsintClient::new(world);
        let cutoff = client.world().config.cutoff_day;
        TrailSystem::build(client, cutoff)
    }

    #[test]
    fn ioc_datasets_are_single_label_and_first_order() {
        let sys = tiny_system();
        let mut rng = StdRng::seed_from_u64(1);
        let datasets = ioc_datasets(&mut rng, &sys.tkg, 0);
        assert_eq!(datasets.len(), 3);
        for ds in &datasets {
            for (row, &node) in ds.nodes.iter().enumerate() {
                let rec = sys.tkg.graph.node(node);
                assert!(rec.first_order());
                let apts = sys.tkg.reporting_apts(node);
                assert_eq!(apts.len(), 1);
                assert_eq!(apts[0], ds.data.y[row]);
            }
        }
        // The generated world must yield usable training data.
        assert!(datasets.iter().any(|d| d.data.len() > 20));
    }

    #[test]
    fn crossval_ioc_beats_random_for_xgb() {
        let sys = tiny_system();
        let mut rng = StdRng::seed_from_u64(2);
        let datasets = ioc_datasets(&mut rng, &sys.tkg, 400);
        let ds = datasets.iter().max_by_key(|d| d.data.len()).unwrap();
        let scores = crossval_ioc(&mut rng, ds, ModelKind::Xgb, &IocModelSettings::fast(), 3);
        let (acc, _) = scores.acc_mean_std();
        let random = 1.0 / sys.tkg.n_classes() as f64;
        assert!(acc > random, "acc {acc} <= random {random}");
    }

    #[test]
    fn tpe_tuning_returns_valid_settings() {
        let sys = tiny_system();
        let mut rng = StdRng::seed_from_u64(6);
        let mut base = IocModelSettings::fast();
        base.max_samples = 300;
        let datasets = ioc_datasets(&mut rng, &sys.tkg, base.max_samples);
        let ds = datasets.iter().max_by_key(|d| d.data.len()).unwrap();
        let tuned = tune_with_tpe(&mut rng, ds, ModelKind::Rf, &base, 3);
        assert!((8..=64).contains(&tuned.forest.n_trees));
        assert!((6..=24).contains(&tuned.forest.tree.max_depth));
        assert!((1..=8).contains(&tuned.forest.tree.min_samples_leaf));
        // Non-forest fields untouched.
        assert_eq!(tuned.gbt.n_rounds, base.gbt.n_rounds);
    }

    #[test]
    fn lp_eval_produces_reasonable_scores() {
        let sys = tiny_system();
        let mut rng = StdRng::seed_from_u64(3);
        let s2 = eval_event_lp(&mut rng, &sys.tkg, 2, 3);
        let s4 = eval_event_lp(&mut rng, &sys.tkg, 4, 3);
        let (a2, _) = s2.acc_mean_std();
        let (a4, _) = s4.acc_mean_std();
        let random = 1.0 / sys.tkg.n_classes() as f64;
        assert!(a2 > random, "LP2 {a2}");
        assert!(a4 > random, "LP4 {a4}");
    }

    #[test]
    fn event_ml_eval_runs_and_beats_random() {
        let sys = tiny_system();
        let mut rng = StdRng::seed_from_u64(4);
        let scores = eval_event_ml(&mut rng, &sys.tkg, ModelKind::Rf, &IocModelSettings::fast(), 3);
        let (acc, _) = scores.acc_mean_std();
        assert!(acc > 1.0 / sys.tkg.n_classes() as f64, "{acc}");
    }

    #[test]
    fn gnn_eval_runs_on_tiny_world() {
        let sys = tiny_system();
        let mut rng = StdRng::seed_from_u64(5);
        let ae_cfg = trail_ml::nn::autoencoder::AutoencoderConfig {
            hidden: 32,
            code: 8,
            epochs: 2,
            batch_size: 64,
            lr: 1e-3,
        };
        let (emb, _) = crate::embed::train_autoencoders(&mut rng, &sys.tkg, &ae_cfg);
        let cfg = GnnEvalConfig {
            hidden: 16,
            train: trail_gnn::TrainConfig { lr: 0.02, epochs: 120, patience: 0 },
            val_fraction: 0.1,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        };
        let scores = eval_event_gnn(&mut rng, &sys.tkg, &emb, 2, &cfg, 3);
        let (acc, _) = scores.acc_mean_std();
        assert!(acc > 1.0 / sys.tkg.n_classes() as f64, "{acc}");
    }
}
