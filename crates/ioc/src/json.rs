//! Minimal self-contained JSON reader/writer for the report formats.
//!
//! The incident-report parsers ([`crate::report`]) must work on
//! pristine toolchains where no external JSON crate is available — the
//! feed formats are small and fixed, so a from-scratch recursive
//! descent parser keeps the ingestion layer dependency-free. Object
//! member order is preserved (a `Vec` of pairs, not a map), which also
//! makes the writer deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u32`, if this is a
    /// non-negative number.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && *n <= u32::MAX as f64 => Some(*n as u32),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Serialise a value to compact JSON text.
pub fn to_string(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        JsonValue::String(s) => write_escaped(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &'static str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the whole sequence through.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { offset: start, message: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u32(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote \" slash \\ newline \n tab \t unicode \u{263A} ctrl \u{0001}";
        let mut encoded = String::new();
        write_escaped(&mut encoded, original);
        let back = parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_escape() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{not json",
            "",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "01x",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn writer_roundtrips_values() {
        let doc = r#"{"id":"r-1","n":42,"neg":-1.5,"tags":["a","b"],"ok":true,"none":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(to_string(&v), doc);
    }
}
