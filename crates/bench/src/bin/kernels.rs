//! `kernels` — std-only microbenchmark for the trail-linalg hot
//! kernels (no criterion: the offline container has no registry).
//!
//! ```text
//! kernels [--quick] [--check] [--out PATH]
//! ```
//!
//! Sweeps the GNN/autoencoder shapes the pipeline actually runs:
//! `matmul`, `matmul_t` and `t_matmul` measure the blocked kernels
//! against the exact pre-blocking reference loops
//! (`trail_linalg::reference`), and `matmul_quant` measures the i8
//! path (per-row activation quantization included, weight
//! quantization cached — matching how `forward_quantized` uses it)
//! against both the old and the new f32 kernel. All timings are
//! min-of-N wall clock, single thread (`TRAIL_THREADS=1` is forced
//! before the pool spins up).
//!
//! Results go to `BENCH_kernels.json` plus machine-parseable stdout
//! lines:
//!
//! ```text
//! [kernel] matmul shape=2048x512x512 old_ns=.. new_ns=.. speedup=..
//! [kernel-summary] matmul_speedup=.. t_matmul_speedup=.. matmul_t_speedup=.. quant_speedup=..
//! ```
//!
//! `scripts/verify.sh --perf` parses the summary line and gates the
//! geometric-mean speedups (f32 ≥ 1.5×, quantized ≥ 2× over the old
//! f32 kernel). `--check` applies the same gates in-process and exits
//! non-zero on regression.

use std::time::Instant;

use trail_linalg::quant::{matmul_quant_into, QuantizedMatrix};
use trail_linalg::{kernels, reference, Matrix};

/// (rows, inner, cols) products the models run: autoencoder encode at
/// the paper's 1,517-feature width, SAGE hidden layers at the paper
/// (512) and default (64) widths, and the logits layer.
const SHAPES: &[(usize, usize, usize, &str)] = &[
    (1024, 1517, 256, "ae_encode"),
    (2048, 512, 512, "sage_hidden_paper"),
    (4096, 256, 64, "sage_hidden_default"),
    (4096, 64, 16, "sage_logits"),
];

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 2000) as f32 / 700.0
        })
        .collect()
}

/// Min-of-N wall clock in nanoseconds.
fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn gflops(m: usize, k: usize, n: usize, ns: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / ns
}

fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

struct Case {
    kernel: &'static str,
    site: &'static str,
    shape: (usize, usize, usize),
    old_ns: f64,
    new_ns: f64,
    extra: Vec<(&'static str, f64)>,
}

fn main() {
    // The speedup claims are single-thread kernel-vs-kernel; pin the
    // pool before anything touches it.
    if std::env::var("TRAIL_THREADS").is_err() {
        std::env::set_var("TRAIL_THREADS", "1");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".into());

    let mut cases: Vec<Case> = Vec::new();
    let mut quant_speedups = Vec::new();
    let mut quant_vs_new = Vec::new();

    for &(m, k, n, site) in SHAPES {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let base_reps = ((2.0e8 / flops).ceil() as usize).clamp(3, 40);
        let reps = if quick { 3.min(base_reps) } else { base_reps };

        let a = fill(m as u64 * 7 + k as u64, m * k);
        let b = fill(n as u64 * 13 + 5, k * n);
        let mut c = vec![0.0f32; m * n];

        // -- matmul: C = A @ B --
        let old_ns = time_min(reps, || {
            c.fill(0.0);
            reference::matmul_rows_skip(&a, k, &b, n, &mut c);
        });
        let new_ns = time_min(reps, || {
            c.fill(0.0);
            kernels::matmul_rows(&a, k, &b, n, &mut c);
        });
        cases.push(Case { kernel: "matmul", site, shape: (m, k, n), old_ns, new_ns, extra: vec![] });

        // -- matmul_quant: weights cached, activations quantized per call --
        let bm = Matrix::from_vec(k, n, b.clone()).unwrap();
        let qbt = QuantizedMatrix::from_cols(&bm);
        let am = Matrix::from_vec(m, k, a.clone()).unwrap();
        let mut qa = QuantizedMatrix::new();
        let mut qc = Matrix::zeros(m, n);
        let quant_ns = time_min(reps, || {
            qa.quantize_rows_into(&am);
            matmul_quant_into(&qa, &qbt, &mut qc).expect("quant shapes");
        });
        quant_speedups.push(old_ns / quant_ns);
        quant_vs_new.push(new_ns / quant_ns);
        cases.push(Case {
            kernel: "matmul_quant",
            site,
            shape: (m, k, n),
            old_ns,
            new_ns: quant_ns,
            extra: vec![("vs_new_f32", new_ns / quant_ns)],
        });

        // -- matmul_t: C = dY @ Wᵀ (backward input-gradient shape) --
        let bt_rows = k; // W is (k_out × n_in) here: reuse (m,n,k) roles
        let wt = fill(9 + m as u64, bt_rows * n);
        let dy = fill(3 + n as u64, m * n);
        let mut dx = vec![0.0f32; m * bt_rows];
        let old_t_ns = time_min(reps, || {
            reference::matmul_t_rows_dot(&dy, n, &wt, bt_rows, &mut dx);
        });
        let dym = Matrix::from_vec(m, n, dy.clone()).unwrap();
        let wtm = Matrix::from_vec(bt_rows, n, wt.clone()).unwrap();
        let mut dxm = Matrix::zeros(m, bt_rows);
        let new_t_ns = time_min(reps, || {
            dym.matmul_t_into(&wtm, &mut dxm).expect("matmul_t shapes");
        });
        cases.push(Case {
            kernel: "matmul_t",
            site,
            shape: (m, n, bt_rows),
            old_ns: old_t_ns,
            new_ns: new_t_ns,
            extra: vec![],
        });

        // -- t_matmul: dW = Xᵀ @ dY (backward weight-gradient shape) --
        let dyb = fill(17, m * n);
        let mut dw = vec![0.0f32; k * n];
        let old_tm_ns = time_min(reps, || {
            dw.fill(0.0);
            reference::t_matmul_rows_skip(&a, m, k, &dyb, n, &mut dw);
        });
        let new_tm_ns = time_min(reps, || {
            dw.fill(0.0);
            kernels::t_matmul_rows(&a, m, k, &dyb, n, &mut dw);
        });
        cases.push(Case {
            kernel: "t_matmul",
            site,
            shape: (m, k, n),
            old_ns: old_tm_ns,
            new_ns: new_tm_ns,
            extra: vec![],
        });
    }

    // Per-kernel geometric-mean speedups.
    let mean_for = |name: &str, cs: &[Case]| {
        geomean(
            &cs.iter()
                .filter(|c| c.kernel == name)
                .map(|c| c.old_ns / c.new_ns)
                .collect::<Vec<_>>(),
        )
    };
    let matmul_speedup = mean_for("matmul", &cases);
    let matmul_t_speedup = mean_for("matmul_t", &cases);
    let t_matmul_speedup = mean_for("t_matmul", &cases);
    let quant_speedup = geomean(&quant_speedups);
    let quant_speedup_vs_new = geomean(&quant_vs_new);

    for c in &cases {
        let (m, k, n) = c.shape;
        println!(
            "[kernel] {} site={} shape={m}x{k}x{n} old_ns={:.0} new_ns={:.0} speedup={:.3} old_gflops={:.2} new_gflops={:.2}{}",
            c.kernel,
            c.site,
            c.old_ns,
            c.new_ns,
            c.old_ns / c.new_ns,
            gflops(m, k, n, c.old_ns),
            gflops(m, k, n, c.new_ns),
            c.extra
                .iter()
                .map(|(k2, v)| format!(" {k2}={v:.3}"))
                .collect::<String>(),
        );
    }
    println!(
        "[kernel-summary] matmul_speedup={matmul_speedup:.3} matmul_t_speedup={matmul_t_speedup:.3} \
         t_matmul_speedup={t_matmul_speedup:.3} quant_speedup={quant_speedup:.3} \
         quant_speedup_vs_new={quant_speedup_vs_new:.3}"
    );

    // JSON mirror of the stdout report.
    let mut arr = Vec::new();
    for c in &cases {
        let (m, k, n) = c.shape;
        let mut o = serde_json::Map::new();
        o.insert("kernel".into(), c.kernel.into());
        o.insert("site".into(), c.site.into());
        o.insert(
            "shape".into(),
            serde_json::Value::Array(vec![m.into(), k.into(), n.into()]),
        );
        o.insert("old_ns".into(), c.old_ns.into());
        o.insert("new_ns".into(), c.new_ns.into());
        o.insert("speedup".into(), (c.old_ns / c.new_ns).into());
        o.insert("old_gflops".into(), gflops(m, k, n, c.old_ns).into());
        o.insert("new_gflops".into(), gflops(m, k, n, c.new_ns).into());
        for (k2, v) in &c.extra {
            o.insert((*k2).into(), (*v).into());
        }
        arr.push(serde_json::Value::Object(o));
    }
    let mut summary = serde_json::Map::new();
    summary.insert("matmul_speedup".into(), matmul_speedup.into());
    summary.insert("matmul_t_speedup".into(), matmul_t_speedup.into());
    summary.insert("t_matmul_speedup".into(), t_matmul_speedup.into());
    summary.insert("quant_speedup".into(), quant_speedup.into());
    summary.insert("quant_speedup_vs_new".into(), quant_speedup_vs_new.into());
    let mut root = serde_json::Map::new();
    root.insert("schema".into(), "trail-bench-kernels/v1".into());
    root.insert("threads".into(), (trail_linalg::pool::num_threads() as u64).into());
    root.insert("quick".into(), quick.into());
    root.insert("cases".into(), serde_json::Value::Array(arr));
    root.insert("summary".into(), serde_json::Value::Object(summary));
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(root)).expect("serialises");
    match std::fs::write(&out_path, json + "\n") {
        Ok(()) => println!("[bench] kernel timings written to {out_path}"),
        Err(e) => eprintln!("[bench] could not write {out_path}: {e}"),
    }

    if check {
        let mut ok = true;
        if matmul_speedup < 1.5 {
            eprintln!("[gate] FAIL matmul geomean speedup {matmul_speedup:.3} < 1.5");
            ok = false;
        }
        if quant_speedup < 2.0 {
            eprintln!("[gate] FAIL quant geomean speedup {quant_speedup:.3} < 2.0 (vs old f32)");
            ok = false;
        }
        if ok {
            println!("[gate] kernel speedups OK (matmul {matmul_speedup:.2}x, quant {quant_speedup:.2}x)");
        } else {
            std::process::exit(1);
        }
    }
}
