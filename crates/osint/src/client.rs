//! The OTX-like query surface the TRAIL pipeline consumes.
//!
//! Mirrors the paper's data-access pattern (Section IV-A): search for
//! tagged events, then request per-IOC analyses that return both
//! features and relational data (secondary IOCs). Analysis gaps are
//! simulated deterministically per IOC so repeated queries agree.

use std::sync::Arc;

use trail_ioc::analysis::{DomainAnalysis, IpAnalysis, UrlAnalysis};
use trail_ioc::report::RawReport;
use trail_ioc::vocab::fnv1a;

use crate::world::World;

/// Maximum historic domains a passive-DNS query returns per IP —
/// real services page their responses; the paper's two-hop cap plays
/// the same role.
const PDNS_PAGE: usize = 12;

/// Read-only client over a generated [`World`].
#[derive(Clone)]
pub struct OsintClient {
    world: Arc<World>,
}

impl OsintClient {
    /// Wrap a world.
    pub fn new(world: Arc<World>) -> Self {
        Self { world }
    }

    /// Borrow the underlying world (ground truth — evaluation only).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// All reports created strictly before `day` (the main dataset pull).
    pub fn events_before(&self, day: u32) -> Vec<RawReport> {
        self.world.events.iter().filter(|e| e.day < day).map(|e| e.report.clone()).collect()
    }

    /// Reports with `lo <= day < hi` (monthly study batches).
    pub fn events_between(&self, lo: u32, hi: u32) -> Vec<RawReport> {
        self.world
            .events
            .iter()
            .filter(|e| e.day >= lo && e.day < hi)
            .map(|e| e.report.clone())
            .collect()
    }

    /// Deterministic per-key analysis gap: true when the query "misses".
    fn misses(&self, key: &str) -> bool {
        let p = self.world.config.analysis_miss_prob;
        let h = fnv1a(key) ^ self.world.config.seed;
        ((h % 10_000) as f32) < p * 10_000.0
    }

    /// Analyse an IP as of `asof_day`. `None` when unknown or the
    /// lookup gaps out.
    pub fn analyze_ip(&self, ip: &str, asof_day: u32) -> Option<IpAnalysis> {
        if self.misses(ip) {
            return None;
        }
        let &idx = self.world.ip_index.get(ip)?;
        let t = &self.world.ips[idx as usize];
        let asn = &self.world.asns[t.asn as usize];
        let historic: Vec<String> = t
            .domains
            .iter()
            .take(PDNS_PAGE)
            .map(|&d| self.world.domain_names[d as usize].clone())
            .collect();
        Some(IpAnalysis {
            country: Some(asn.country.clone()),
            issuer: Some(t.issuer.clone()),
            latitude: t.lat,
            longitude: t.lon,
            a_record_count: t.domains.len() as u32,
            resolving_domain_count: t.domains.len() as u32,
            asn: Some(asn.number),
            asn_size_log: asn.size_log,
            first_seen_days: asof_day.saturating_sub(t.first_day) as f32,
            last_seen_days: asof_day.saturating_sub(t.last_day) as f32,
            historic_domains: historic,
        })
    }

    /// Analyse a domain as of `asof_day`.
    pub fn analyze_domain(&self, domain: &str, asof_day: u32) -> Option<DomainAnalysis> {
        if self.misses(domain) {
            return None;
        }
        let &idx = self.world.domain_index.get(domain)?;
        let t = &self.world.domains[idx as usize];
        let mut record_counts = [0u32; 9];
        record_counts[0] = t.ips.len() as u32;
        record_counts[1..9].copy_from_slice(&t.extra_records);
        let nxdomain =
            asof_day.saturating_sub(t.last_day) as f32 > self.world.config.nxdomain_after_days;
        Some(DomainAnalysis {
            record_counts,
            nxdomain,
            first_seen_days: asof_day.saturating_sub(t.first_day) as f32,
            last_seen_days: asof_day.saturating_sub(t.last_day) as f32,
            resolved_ips: t
                .ips
                .iter()
                .take(PDNS_PAGE)
                .map(|&ip| self.world.ip_names[ip as usize].clone())
                .collect(),
            cname_targets: Vec::new(),
            hosted_urls: t
                .urls
                .iter()
                .take(PDNS_PAGE)
                .map(|&u| self.world.url_names[u as usize].clone())
                .collect(),
        })
    }

    /// Analyse a URL as of `asof_day` (the cached cURL probe).
    pub fn analyze_url(&self, url: &str, asof_day: u32) -> Option<UrlAnalysis> {
        if self.misses(url) {
            return None;
        }
        let &idx = self.world.url_index.get(url)?;
        let t = &self.world.urls[idx as usize];
        let alive = asof_day.saturating_sub(t.created_day) < 400;
        Some(UrlAnalysis {
            alive,
            file_type: Some(t.file_type.clone()),
            file_class: Some(t.file_class.clone()),
            http_code: Some(if alive { t.http_code } else { 404 }),
            encoding: Some(t.encoding.clone()),
            server: Some(t.server.clone()),
            server_os: Some(t.server_os.clone()),
            services: t.services.clone(),
            header_flags: t.header_flags.clone(),
            resolved_ips: t
                .ips
                .iter()
                .take(PDNS_PAGE)
                .map(|&ip| self.world.ip_names[ip as usize].clone())
                .collect(),
        })
    }

    /// ASN metadata by number (whois equivalent): `(name, country)`.
    pub fn asn_info(&self, number: u32) -> Option<(String, String)> {
        self.world
            .asns
            .iter()
            .find(|a| a.number == number)
            .map(|a| (a.name.clone(), a.country.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;

    fn client() -> OsintClient {
        OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(9))))
    }

    #[test]
    fn event_windows_partition_timeline() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let horizon = c.world().config.horizon_day();
        let before = c.events_before(cutoff).len();
        let after = c.events_between(cutoff, horizon).len();
        assert_eq!(before + after, c.world().events.len());
        assert!(before > 0 && after > 0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let c = client();
        // Find an IP indicator in some report.
        let reports = c.events_before(c.world().config.cutoff_day);
        let ip = reports
            .iter()
            .flat_map(|r| &r.indicators)
            .find(|i| i.indicator_type == "IPv4" && !i.indicator.contains('['))
            .map(|i| i.indicator.clone())
            .expect("some plain IP indicator");
        assert_eq!(c.analyze_ip(&ip, 500), c.analyze_ip(&ip, 500));
    }

    #[test]
    fn unknown_iocs_return_none() {
        let c = client();
        assert!(c.analyze_ip("203.0.113.99", 100).is_none());
        assert!(c.analyze_domain("never-generated.example", 100).is_none());
        assert!(c.analyze_url("http://never.example/x", 100).is_none());
    }

    #[test]
    fn some_queries_gap_out() {
        let c = client();
        let total = c.world().ip_names.len();
        let missed = c
            .world()
            .ip_names
            .iter()
            .filter(|name| c.analyze_ip(name, 400).is_none())
            .count();
        // miss prob is 10%: expect some but not most.
        assert!(missed > 0, "no analysis gaps at all");
        assert!(missed < total / 2, "{missed}/{total} missed");
    }

    #[test]
    fn domain_analysis_links_ips_and_ages() {
        let c = client();
        // Find an analysable domain with resolutions.
        let found = c
            .world()
            .domain_names
            .iter()
            .find_map(|name| c.analyze_domain(name, 700).map(|a| (name.clone(), a)))
            .expect("some domain analysis");
        let (_, a) = found;
        assert_eq!(a.record_counts[0] as usize, a.resolved_ips.len().max(a.record_counts[0] as usize).min(a.record_counts[0] as usize));
        assert!(a.first_seen_days >= a.last_seen_days);
    }

    #[test]
    fn old_domains_go_nxdomain() {
        let c = client();
        let cfg_days = c.world().config.nxdomain_after_days as u32;
        let name = c
            .world()
            .domain_names
            .iter()
            .find(|n| c.analyze_domain(n, 0).is_some())
            .unwrap()
            .clone();
        let late = c.analyze_domain(&name, 100_000 + cfg_days).unwrap();
        assert!(late.nxdomain);
    }

    #[test]
    fn url_analysis_has_server_fingerprint() {
        let c = client();
        let found = c
            .world()
            .url_names
            .iter()
            .find_map(|name| c.analyze_url(name, 100).map(|a| a))
            .expect("some URL analysis");
        assert!(found.server.is_some());
        assert!(found.file_type.is_some());
    }
}
