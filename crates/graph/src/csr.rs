//! Frozen undirected CSR view for fast traversal and message passing.

use crate::ids::NodeId;
use crate::schema::EdgeKind;
use crate::store::GraphStore;

/// Compressed-sparse-row adjacency treating every edge as undirected,
/// which is how the paper traverses the TKG (label propagation and
/// GraphSAGE both use the symmetrised adjacency).
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    kinds: Vec<EdgeKind>,
}

impl Csr {
    /// Build from a [`GraphStore`], symmetrising all edges.
    pub fn from_store(g: &GraphStore) -> Self {
        let _span = trail_obs::span("graph.csr_freeze");
        let n = g.node_count();
        let mut degrees = vec![0usize; n];
        for e in g.edges() {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); acc];
        let mut kinds = vec![EdgeKind::InReport; acc];
        for e in g.edges() {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s]] = e.dst;
            kinds[cursor[s]] = e.kind;
            cursor[s] += 1;
            targets[cursor[d]] = e.src;
            kinds[cursor[d]] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed half-edges (2x the undirected edge count).
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Undirected degree of a node.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.offsets[id.index() + 1] - self.offsets[id.index()]
    }

    /// Neighbours of a node.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[id.index()]..self.offsets[id.index() + 1]]
    }

    /// Neighbours of a node with the edge kind of each incident edge.
    pub fn neighbors_with_kinds(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        let r = self.offsets[id.index()]..self.offsets[id.index() + 1];
        self.targets[r.clone()].iter().copied().zip(self.kinds[r].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::NodeKind;

    #[test]
    fn csr_matches_store_adjacency() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        let d = g.upsert_node(NodeKind::Domain, "d");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();

        let csr = Csr::from_store(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.half_edge_count(), 6);
        assert_eq!(csr.degree(e), 2);
        assert_eq!(csr.degree(d), 2);
        let mut n: Vec<_> = csr.neighbors(d).to_vec();
        n.sort();
        assert_eq!(n, vec![e, ip]);
        let kinds: Vec<_> = csr.neighbors_with_kinds(ip).collect();
        assert!(kinds.contains(&(e, EdgeKind::InReport)));
        assert!(kinds.contains(&(d, EdgeKind::ARecord)));
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_store(&GraphStore::new());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.half_edge_count(), 0);
    }

    #[test]
    fn isolated_node_has_empty_neighbor_slice() {
        let mut g = GraphStore::new();
        let a = g.upsert_node(NodeKind::Asn, "AS1");
        let csr = Csr::from_store(&g);
        assert_eq!(csr.degree(a), 0);
        assert!(csr.neighbors(a).is_empty());
        assert_eq!(csr.neighbors_with_kinds(a).count(), 0);
    }

    #[test]
    fn parallel_edges_of_different_kinds_both_appear() {
        let mut g = GraphStore::new();
        let u = g.upsert_node(NodeKind::Url, "http://a.example/x");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = g.upsert_node(NodeKind::Domain, "a.example");
        g.add_edge(u, ip, EdgeKind::UrlResolvesTo).unwrap();
        g.add_edge(u, d, EdgeKind::HostedOn).unwrap();
        g.add_edge(d, ip, EdgeKind::DomainResolvesTo).unwrap();
        let csr = Csr::from_store(&g);
        let kinds: Vec<EdgeKind> = csr.neighbors_with_kinds(u).map(|(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::UrlResolvesTo));
        assert!(kinds.contains(&EdgeKind::HostedOn));
    }
}
