//! Crash-safe checkpoints for the longitudinal study.
//!
//! After every study window the resumable study serialises its entire
//! mutable state — window index, per-month results, the confusion
//! matrix, ingest accounting, visible-label sets, GNN weights and
//! autoencoder weights — into one framed, checksummed binary file,
//! written with the same temp-file + atomic-rename discipline as the
//! graph snapshots ([`trail_graph::persist::write_atomic`]). A process
//! killed at *any* point therefore finds either the previous complete
//! checkpoint or the new complete checkpoint, never a torn one.
//!
//! RNG state is deliberately **not** serialised. The resumable study
//! derives a fresh RNG per stage from `(study_seed, stage index)`
//! (see [`crate::longitudinal::stage_rng`]), so resuming window `k`
//! reconstructs exactly the generator an uninterrupted run would use —
//! portable across rand implementations, no generator internals on
//! disk.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! "TSC1" | u32 version | u64 payload_len | u64 fnv1a(payload) | payload
//! ```
//!
//! Loading verifies magic, version, length and checksum before any
//! field is parsed, then bounds-checks every read; corrupt or truncated
//! files yield a typed [`CheckpointError`], never a panic.

use std::path::Path;

use trail_gnn::SageConfig;
use trail_graph::persist::{fnv1a_bytes, write_atomic};
use trail_graph::PersistError;
use trail_linalg::Matrix;
use trail_ml::metrics::ConfusionMatrix;

use crate::enrich::IngestStats;
use crate::longitudinal::MonthResult;

/// Magic bytes: Trail Study Checkpoint.
const MAGIC: [u8; 4] = *b"TSC1";
/// Format version.
const VERSION: u32 = 1;
/// Frame header length: magic + version + payload len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Why a checkpoint failed to save or load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Frame-level failure (I/O, checksum, truncation, malformed field).
    Persist(PersistError),
    /// The checkpoint is intact but belongs to a different run
    /// (seed / config / world mismatch).
    Mismatch {
        /// Which guard field disagreed.
        what: &'static str,
    },
}

impl From<PersistError> for CheckpointError {
    fn from(e: PersistError) -> Self {
        CheckpointError::Persist(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Persist(e) => write!(f, "checkpoint frame error: {e}"),
            CheckpointError::Mismatch { what } => {
                write!(f, "checkpoint belongs to a different run ({what} mismatch)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Checkpoint result alias.
pub type Result<T> = std::result::Result<T, CheckpointError>;

fn malformed(offset: usize, what: &'static str) -> CheckpointError {
    CheckpointError::Persist(PersistError::Malformed { offset, what })
}

/// The complete mutable state of a resumable study between windows.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyCheckpoint {
    /// Study seed every stage RNG derives from.
    pub seed: u64,
    /// Fingerprint of the run parameters (world + study config); a
    /// resume with different parameters is rejected, not silently
    /// blended.
    pub fingerprint: u64,
    /// Next window to run (everything before it is complete).
    pub next_month: u32,
    /// Completed per-month results.
    pub months: Vec<MonthResult>,
    /// Fig. 7 confusion matrix, once the first non-empty month ran.
    pub confusion: Option<ConfusionMatrix>,
    /// Aggregate ingest taxonomy over completed windows.
    pub window_ingest: IngestStats,
    /// Base (pre-cutoff) labelled event pairs, as raw node indices.
    pub base_pairs: Vec<(u32, u16)>,
    /// Labels visible to the fresh model so far.
    pub fresh_visible: Vec<(u32, u16)>,
    /// GNN architecture both models share.
    pub sage_cfg: SageConfig,
    /// Stale model parameters, per layer `(W_root, W_nbr, b)`.
    pub stale: Vec<(Matrix, Matrix, Matrix)>,
    /// Fresh (fine-tuned) model parameters.
    pub fresh: Vec<(Matrix, Matrix, Matrix)>,
    /// Autoencoder parameters: per encoder, the four dense layers'
    /// `(W, b)` in [`trail_ml::nn::Autoencoder::layer_params`] order.
    pub encoders: Vec<Vec<(Matrix, Matrix)>>,
}

// --- encoding ---------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_u32(out, v.to_bits());
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(u32, u16)]) {
    put_u64(out, pairs.len() as u64);
    for &(n, c) in pairs {
        put_u32(out, n);
        put_u16(out, c);
    }
}

// --- decoding ---------------------------------------------------------------

/// Bounds-checked little-endian reader over the verified payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| malformed(self.pos, what))?;
        if end > self.data.len() {
            return Err(malformed(self.pos, what));
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a length prefix that must plausibly fit in the remaining
    /// payload (each element needs >= `min_elem_bytes`). Rejects
    /// absurd counts from corrupt length fields before any allocation.
    fn len(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize> {
        let n = self.u64(what)?;
        let remaining = (self.data.len() - self.pos) as u64;
        if n > remaining / min_elem_bytes.max(1) as u64 {
            return Err(malformed(self.pos, what));
        }
        Ok(n as usize)
    }

    fn matrix(&mut self, what: &'static str) -> Result<Matrix> {
        let rows = self.u64(what)? as usize;
        let cols = self.u64(what)? as usize;
        let n = rows.checked_mul(cols).ok_or_else(|| malformed(self.pos, what))?;
        if n > (self.data.len() - self.pos) / 4 {
            return Err(malformed(self.pos, what));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(f32::from_bits(self.u32(what)?));
        }
        Matrix::from_vec(rows, cols, data).map_err(|_| malformed(self.pos, what))
    }

    fn pairs(&mut self, what: &'static str) -> Result<Vec<(u32, u16)>> {
        let n = self.len(6, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u32(what)?, self.u16(what)?));
        }
        Ok(out)
    }
}

fn put_layers(out: &mut Vec<u8>, layers: &[(Matrix, Matrix, Matrix)]) {
    put_u64(out, layers.len() as u64);
    for (w_root, w_nbr, b) in layers {
        put_matrix(out, w_root);
        put_matrix(out, w_nbr);
        put_matrix(out, b);
    }
}

fn read_layers(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<(Matrix, Matrix, Matrix)>> {
    let n = c.len(48, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((c.matrix(what)?, c.matrix(what)?, c.matrix(what)?));
    }
    Ok(out)
}

impl StudyCheckpoint {
    /// Serialise to the framed, checksummed binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(4096);
        put_u64(&mut p, self.seed);
        put_u64(&mut p, self.fingerprint);
        put_u32(&mut p, self.next_month);

        put_u64(&mut p, self.months.len() as u64);
        for m in &self.months {
            put_u32(&mut p, m.month);
            put_u64(&mut p, m.n_events as u64);
            put_f64(&mut p, m.stale_acc);
            put_f64(&mut p, m.stale_bacc);
            put_f64(&mut p, m.fresh_acc);
            put_f64(&mut p, m.fresh_bacc);
        }

        match &self.confusion {
            None => p.push(0),
            Some(cm) => {
                p.push(1);
                let k = cm.n_classes();
                put_u64(&mut p, k as u64);
                for t in 0..k {
                    for pr in 0..k {
                        put_u64(&mut p, cm.get(t, pr) as u64);
                    }
                }
            }
        }

        let s = &self.window_ingest;
        for v in [
            s.first_order,
            s.secondary,
            s.edges,
            s.linked,
            s.missed_permanent,
            s.missed_transient,
            s.retried,
            s.breaker_rejected,
            s.dropped_unparseable,
        ] {
            put_u64(&mut p, v as u64);
        }
        put_u64(&mut p, s.backoff_ms);

        put_pairs(&mut p, &self.base_pairs);
        put_pairs(&mut p, &self.fresh_visible);

        put_u64(&mut p, self.sage_cfg.input_dim as u64);
        put_u64(&mut p, self.sage_cfg.hidden as u64);
        put_u64(&mut p, self.sage_cfg.layers as u64);
        put_u64(&mut p, self.sage_cfg.n_classes as u64);
        p.push(self.sage_cfg.l2_normalize as u8);

        put_layers(&mut p, &self.stale);
        put_layers(&mut p, &self.fresh);

        put_u64(&mut p, self.encoders.len() as u64);
        for enc in &self.encoders {
            put_u64(&mut p, enc.len() as u64);
            for (w, b) in enc {
                put_matrix(&mut p, w);
                put_matrix(&mut p, b);
            }
        }

        let mut out = Vec::with_capacity(HEADER_LEN + p.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_bytes(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Parse and verify a frame produced by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(PersistError::TooShort { have: data.len() }.into());
        }
        if data[..4] != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&data[..4]);
            return Err(PersistError::BadMagic { found }.into());
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion { found: version }.into());
        }
        // Compare the untrusted length in the u64 domain — converting
        // it to `usize` first would wrap on 32-bit targets and could
        // alias a hostile length onto the actual payload size.
        let payload_len = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let expected = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let payload = &data[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return Err(PersistError::Truncated { want: payload_len, have: payload.len() }.into());
        }
        let actual = fnv1a_bytes(payload);
        if actual != expected {
            return Err(PersistError::ChecksumMismatch { expected, actual }.into());
        }

        let mut c = Cursor { data: payload, pos: 0 };
        let seed = c.u64("seed")?;
        let fingerprint = c.u64("fingerprint")?;
        let next_month = c.u32("next_month")?;

        let n_months = c.len(36, "month count")?;
        let mut months = Vec::with_capacity(n_months);
        for _ in 0..n_months {
            months.push(MonthResult {
                month: c.u32("month index")?,
                n_events: c.u64("month events")? as usize,
                stale_acc: c.f64("stale_acc")?,
                stale_bacc: c.f64("stale_bacc")?,
                fresh_acc: c.f64("fresh_acc")?,
                fresh_bacc: c.f64("fresh_bacc")?,
            });
        }

        let confusion = match c.u8("confusion flag")? {
            0 => None,
            1 => {
                let k = c.u64("confusion classes")? as usize;
                if k.checked_mul(k).is_none_or(|n| n > (c.data.len() - c.pos) / 8) {
                    return Err(malformed(c.pos, "confusion classes"));
                }
                let mut counts = vec![vec![0usize; k]; k];
                for row in counts.iter_mut() {
                    for cell in row.iter_mut() {
                        *cell = c.u64("confusion cell")? as usize;
                    }
                }
                Some(ConfusionMatrix::from_counts(counts))
            }
            _ => return Err(malformed(c.pos - 1, "confusion flag")),
        };

        let mut window_ingest = IngestStats {
            first_order: c.u64("ingest.first_order")? as usize,
            secondary: c.u64("ingest.secondary")? as usize,
            edges: c.u64("ingest.edges")? as usize,
            linked: c.u64("ingest.linked")? as usize,
            missed_permanent: c.u64("ingest.missed_permanent")? as usize,
            missed_transient: c.u64("ingest.missed_transient")? as usize,
            retried: c.u64("ingest.retried")? as usize,
            breaker_rejected: c.u64("ingest.breaker_rejected")? as usize,
            dropped_unparseable: c.u64("ingest.dropped_unparseable")? as usize,
            backoff_ms: 0,
        };
        window_ingest.backoff_ms = c.u64("ingest.backoff_ms")?;

        let base_pairs = c.pairs("base_pairs")?;
        let fresh_visible = c.pairs("fresh_visible")?;

        let sage_cfg = SageConfig {
            input_dim: c.u64("sage.input_dim")? as usize,
            hidden: c.u64("sage.hidden")? as usize,
            layers: c.u64("sage.layers")? as usize,
            n_classes: c.u64("sage.n_classes")? as usize,
            l2_normalize: match c.u8("sage.l2_normalize")? {
                0 => false,
                1 => true,
                _ => return Err(malformed(c.pos - 1, "sage.l2_normalize")),
            },
        };

        let stale = read_layers(&mut c, "stale layers")?;
        let fresh = read_layers(&mut c, "fresh layers")?;
        if stale.len() != sage_cfg.layers || fresh.len() != sage_cfg.layers {
            return Err(malformed(c.pos, "layer count disagrees with config"));
        }

        let n_enc = c.len(8, "encoder count")?;
        let mut encoders = Vec::with_capacity(n_enc);
        for _ in 0..n_enc {
            let n_layers = c.len(32, "encoder layer count")?;
            let mut enc = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                enc.push((c.matrix("encoder W")?, c.matrix("encoder b")?));
            }
            encoders.push(enc);
        }

        if c.pos != payload.len() {
            return Err(malformed(c.pos, "trailing bytes"));
        }

        Ok(Self {
            seed,
            fingerprint,
            next_month,
            months,
            confusion,
            window_ingest,
            base_pairs,
            fresh_visible,
            sage_cfg,
            stale,
            fresh,
            encoders,
        })
    }

    /// Write atomically (temp file + fsync + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.to_bytes()).map_err(CheckpointError::from)
    }

    /// Load and verify from disk.
    pub fn load(path: &Path) -> Result<Self> {
        let data = std::fs::read(path)
            .map_err(|e| CheckpointError::Persist(PersistError::Io(e)))?;
        Self::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StudyCheckpoint {
        let m = |r: usize, c0: usize, s: f32| {
            Matrix::from_vec(r, c0, (0..r * c0).map(|i| i as f32 * s).collect()).unwrap()
        };
        StudyCheckpoint {
            seed: 0xfeed,
            fingerprint: 0xabc123,
            next_month: 2,
            months: vec![MonthResult {
                month: 0,
                n_events: 7,
                stale_acc: 0.5,
                stale_bacc: 0.25,
                fresh_acc: 0.75,
                fresh_bacc: 0.3125,
            }],
            confusion: Some(ConfusionMatrix::from_predictions(&[0, 1, 1], &[0, 1, 0], 2)),
            window_ingest: IngestStats {
                first_order: 9,
                secondary: 4,
                edges: 11,
                linked: 2,
                missed_permanent: 1,
                missed_transient: 3,
                retried: 5,
                breaker_rejected: 2,
                dropped_unparseable: 0,
                backoff_ms: 350,
            },
            base_pairs: vec![(0, 1), (3, 0)],
            fresh_visible: vec![(0, 1), (3, 0), (9, 2)],
            sage_cfg: SageConfig {
                input_dim: 4,
                hidden: 3,
                layers: 2,
                n_classes: 2,
                l2_normalize: true,
            },
            stale: vec![
                (m(4, 3, 0.5), m(4, 3, -0.25), m(1, 3, 1.0)),
                (m(3, 2, 0.125), m(3, 2, 2.0), m(1, 2, -1.0)),
            ],
            fresh: vec![
                (m(4, 3, 0.75), m(4, 3, -0.5), m(1, 3, 0.0)),
                (m(3, 2, 1.5), m(3, 2, -2.0), m(1, 2, 3.0)),
            ],
            encoders: vec![vec![(m(4, 2, 1.0), m(1, 2, 0.5)), (m(2, 4, -1.0), m(1, 4, 0.25))]],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = StudyCheckpoint::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, ck);
    }

    #[test]
    fn empty_state_roundtrips() {
        let ck = StudyCheckpoint {
            months: Vec::new(),
            confusion: None,
            base_pairs: Vec::new(),
            fresh_visible: Vec::new(),
            stale: sample().stale,
            fresh: sample().fresh,
            encoders: Vec::new(),
            next_month: 0,
            ..sample()
        };
        let back = StudyCheckpoint::from_bytes(&ck.to_bytes()).expect("roundtrip");
        assert_eq!(back, ck);
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                StudyCheckpoint::from_bytes(&bad).is_err(),
                "flip at byte {i}/{} went unnoticed",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                StudyCheckpoint::from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn structurally_invalid_payload_with_valid_checksum_is_rejected() {
        // A payload that passes the checksum but decodes to an absurd
        // month count must fail on the plausibility guard.
        let ck = sample();
        let mut payload = Vec::new();
        put_u64(&mut payload, ck.seed);
        put_u64(&mut payload, ck.fingerprint);
        put_u32(&mut payload, 0);
        put_u64(&mut payload, u64::MAX); // month count
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC);
        framed.extend_from_slice(&VERSION.to_le_bytes());
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        match StudyCheckpoint::from_bytes(&framed) {
            Err(CheckpointError::Persist(PersistError::Malformed { what, .. })) => {
                assert_eq!(what, "month count");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("trail-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt");
        let ck = sample();
        ck.save(&path).expect("save");
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let back = StudyCheckpoint::load(&path).expect("load");
        assert_eq!(back, ck);
        std::fs::remove_dir_all(&dir).ok();
    }
}
