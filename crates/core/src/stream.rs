//! Streaming ingestion: event-at-a-time TKG growth, bitwise-equivalent
//! to batch.
//!
//! The paper's pipeline (and [`crate::longitudinal`]) ingests whole
//! months at once; the OSINT systems it builds on run *continuous*
//! collection. [`StreamRuntime`] closes that gap: it accepts reports
//! one at a time (or in micro-batches), runs each through the existing
//! collect → enrich → merge path, delta-merges the frozen CSR via
//! [`Csr::merge_appended`], re-encodes only dirty rows through
//! [`CodeCache`], and fires periodic *ticks* — label-propagation check
//! plus GNN fine-tune over the events accumulated since the last tick.
//!
//! ## The equivalence contract
//!
//! For a fixed base system, config and RNG seed, any partition of the
//! same report sequence into micro-batches — pushed between the same
//! tick points — produces
//!
//! 1. a byte-identical TKG (same nodes, same edges, same CSR), and
//! 2. a bitwise-identical model state and per-tick result series.
//!
//! Three properties make this hold, each load-bearing:
//!
//! * **Canonical arrival order.** Depth-2 enrichment links only to
//!   nodes already in the graph, so the edge set depends on ingest
//!   order. [`StreamRuntime::push_batch`] therefore sorts each
//!   micro-batch by `(created_day, id)` — the order
//!   [`trail_osint::OsintClient::stream_reports`] delivers and exactly
//!   the order the batch path ingests — healing within-batch
//!   reordering instead of diverging under it.
//! * **Content-keyed incremental state.** The delta CSR merge and the
//!   fingerprint-keyed code cache depend only on the store's content,
//!   never on how many merge steps produced it (pinned byte-for-byte
//!   by the `merge_appended` audit tests).
//! * **Deterministic enrichment.** World faults are deterministic per
//!   `(key, attempt)`, features are first-write-wins, and analyses are
//!   evaluated as-of a day derived from the event via [`AsofPolicy`] —
//!   never from wall clock — so a replay (the crash-recovery story:
//!   the feed is the log) reconstructs the exact graph.
//!
//! Driven with monthly ticks and [`AsofPolicy::WindowEnd`], the
//! runtime reproduces [`crate::longitudinal::run_monthly_study`]'s
//! [`StudyOutput`] bitwise — the differential gate of
//! `tests/stream_equivalence_test.rs`.
//!
//! ## Latency budget
//!
//! Every pushed report is timed. Events over `budget_us` are **counted
//! and surfaced** (`stream.events.exceeded`, [`BudgetLedger`]) — never
//! dropped: an attribution pipeline that silently shed late evidence
//! would corrupt the graph it serves. The ledger reconciles exactly:
//! `issued == within_budget + exceeded == attributed + dropped`, where
//! `dropped` counts collector rejections (unresolved/conflicting tags),
//! which are themselves surfaced, deterministic, and identical to the
//! batch collector's verdicts.
//!
//! ## Durability
//!
//! The replay story above assumes the feed can be replayed. The
//! [`wal`] module removes that assumption: a TWL1 write-ahead log
//! persists every pushed report *before* it is processed, and
//! [`DurableStream`] recovers the surviving prefix after a crash —
//! truncating at the first torn record — into a state bitwise
//! identical to an uninterrupted run over that prefix. See the module
//! docs for the frame format, fsync policies and crash windows.

use std::time::Instant;

use rand::rngs::StdRng;
use trail_gnn::train::predict_events;
use trail_gnn::{LabelPropagation, SageConfig, SageModel};
use trail_graph::persist::fnv1a_bytes;
use trail_graph::{Csr, NodeId};
use trail_ioc::report::RawReport;
use trail_linalg::Matrix;
use trail_ml::metrics::{accuracy, balanced_accuracy, ConfusionMatrix};
use trail_ml::nn::autoencoder::Autoencoder;

use crate::collector::{collect, CollectStats};
use crate::embed::{
    assemble_gnn_input_from, train_autoencoders_with_scalers, CodeCache, SparseScaler,
};
use crate::enrich::{Enricher, IngestStats};
use crate::longitudinal::{MonthResult, StudyConfig, StudyOutput};
use crate::system::TrailSystem;
use crate::tkg::Tkg;

pub mod wal;

pub use wal::{
    DurableStream, FsyncPolicy, RecoveryReport, Tear, Wal, WalConfig, WalError,
};

/// Which day enrichment analyses are evaluated *as of* for a report.
///
/// The analysis day changes what the OSINT world answers (NXDOMAIN
/// after takedown, late passive-DNS captures), so stream/batch
/// equivalence requires the policy to derive the day from the event —
/// deterministically — rather than from arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsofPolicy {
    /// Every event analysed as of one fixed day (a frozen snapshot of
    /// the intelligence sources).
    Fixed(u32),
    /// Events analysed as of the end of the `stride`-day window
    /// containing them, windows anchored at `origin` — exactly the
    /// monthly study's `Enricher::new(client, hi)` semantics when
    /// `origin` is the build cutoff and `stride` is
    /// [`trail_osint::DAYS_PER_MONTH`].
    WindowEnd {
        /// First window's start day.
        origin: u32,
        /// Window length in days.
        stride: u32,
    },
}

impl AsofPolicy {
    /// The as-of day for a report created on `day`.
    pub fn asof_for(&self, day: u32) -> u32 {
        match *self {
            AsofPolicy::Fixed(d) => d,
            AsofPolicy::WindowEnd { origin, stride } => {
                let s = stride.max(1);
                if day < origin {
                    origin
                } else {
                    origin + ((day - origin) / s + 1) * s
                }
            }
        }
    }
}

/// Streaming runtime parameters.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Model/training hyper-parameters, shared with the batch study so
    /// the two paths are comparable bit for bit (`months` is unused —
    /// the stream has no horizon).
    pub study: StudyConfig,
    /// As-of policy for enrichment analyses.
    pub asof: AsofPolicy,
    /// Automatic tick cadence: fine-tune after every `n` attributed
    /// events. `None` leaves ticks entirely to explicit
    /// [`StreamRuntime::tick`] calls (e.g. month boundaries).
    pub tick_every: Option<usize>,
    /// Per-event latency budget in microseconds. Exceeding it is
    /// counted and surfaced, never enforced by dropping.
    pub budget_us: u64,
}

/// Exact accounting of every report pushed into the stream.
///
/// Two reconciliations hold at all times (asserted by
/// [`BudgetLedger::reconciles`] and pinned by property tests):
/// `issued == within_budget + exceeded` and
/// `issued == attributed + dropped`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetLedger {
    /// Reports pushed.
    pub issued: u64,
    /// Reports processed within the latency budget.
    pub within_budget: u64,
    /// Reports that blew the budget (still fully processed).
    pub exceeded: u64,
    /// Reports ingested into the TKG as attributed events.
    pub attributed: u64,
    /// Reports the collector rejected (unresolved or conflicting
    /// tags) — surfaced here, identical to the batch collector's
    /// verdicts.
    pub dropped: u64,
}

impl BudgetLedger {
    /// True when both accounting identities hold.
    pub fn reconciles(&self) -> bool {
        self.issued == self.within_budget + self.exceeded
            && self.issued == self.attributed + self.dropped
    }
}

/// What happened to one pushed report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Ingested into the TKG as this event node.
    Ingested {
        /// The new event's node.
        node: NodeId,
        /// Whether processing stayed within the latency budget.
        within_budget: bool,
    },
    /// Rejected by the collector (unresolved/conflicting tags); the
    /// drop is counted, never silent.
    Dropped {
        /// Whether processing stayed within the latency budget.
        within_budget: bool,
    },
}

/// One tick's deterministic summary (wall clock lives in obs
/// histograms, never here — this struct is compared bitwise across
/// partitions).
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// The per-tick evaluation, shaped exactly like a study month so
    /// monthly-ticked streams convert into a [`StudyOutput`].
    pub result: MonthResult,
    /// How many of the tick's events label propagation agreed with the
    /// fresh GNN on (read-only check — LP never mutates state).
    pub lp_agree: usize,
}

/// The streaming ingestion runtime. See the module docs for the
/// equivalence contract.
pub struct StreamRuntime {
    sys: TrailSystem,
    cfg: StreamConfig,
    rng: StdRng,
    encoders: Vec<Autoencoder>,
    scalers: Vec<SparseScaler>,
    code_dim: usize,
    base_pairs: Vec<(NodeId, u16)>,
    stale_model: SageModel,
    fresh_model: SageModel,
    /// Labels visible to the fresh model: base events + past ticks.
    fresh_visible: Vec<(NodeId, u16)>,
    /// Frozen CSR as of the last sync; `None` only transiently.
    inc_csr: Option<Csr>,
    code_cache: CodeCache,
    /// Reusable GNN input; label block equals `fresh_visible` between
    /// ticks.
    x: Matrix,
    /// Events ingested since the last tick.
    pending: Vec<(NodeId, u16)>,
    tick_index: u32,
    ticks: Vec<TickReport>,
    confusion: Option<ConfusionMatrix>,
    window_ingest: IngestStats,
    stream_collect: CollectStats,
    ledger: BudgetLedger,
    /// Wall clock spent in [`Self::sync`] — the incremental-maintenance
    /// cost that replaces full input rebuilds. Measurement only; never
    /// part of any determinism comparison.
    sync_secs: f64,
}

impl StreamRuntime {
    /// Build the runtime over a base system: train the frozen
    /// autoencoders/scalers and both GNNs exactly as the batch study
    /// does (same RNG consumption order), then seed the incremental
    /// state.
    pub fn new(mut rng: StdRng, sys: TrailSystem, cfg: StreamConfig) -> Self {
        let _span = trail_obs::span("stream.init");
        let (_, encoders, scalers) =
            train_autoencoders_with_scalers(&mut rng, &sys.tkg, &cfg.study.ae);
        let code_dim = encoders.first().map_or(0, |ae| ae.code_dim());
        let base_pairs: Vec<(NodeId, u16)> =
            sys.tkg.events.iter().map(|e| (e.node, e.apt)).collect();
        let masking = trail_gnn::LabelMasking { offset: code_dim + 5, visible_fraction: 0.5 };

        let train_model = |rng: &mut StdRng| -> SageModel {
            let emb = crate::embed::compute_codes_with(
                &sys.tkg,
                &encoders,
                &scalers,
                cfg.study.ae.batch_size,
            );
            let mut x = crate::embed::assemble_gnn_input(&sys.tkg, &emb, &base_pairs);
            let csr = sys.tkg.csr();
            let sage_cfg = SageConfig {
                input_dim: x.cols(),
                hidden: cfg.study.gnn.hidden,
                layers: cfg.study.gnn_layers,
                n_classes: sys.tkg.n_classes(),
                l2_normalize: cfg.study.gnn.l2_normalize,
            };
            let (model, _) = trail_gnn::train_sage_masked(
                rng,
                &csr,
                &mut x,
                sage_cfg,
                &base_pairs,
                &[],
                &cfg.study.gnn.train,
                masking,
            );
            model
        };
        let stale_model = train_model(&mut rng);
        let fresh_model = train_model(&mut rng);

        let inc_csr = sys.tkg.csr();
        let mut code_cache = CodeCache::new();
        code_cache.refresh(&sys.tkg, &encoders, &scalers, cfg.study.ae.batch_size);
        let x = assemble_gnn_input_from(&sys.tkg, code_cache.codes(), code_dim, &base_pairs);
        let fresh_visible = base_pairs.clone();

        Self {
            sys,
            cfg,
            rng,
            encoders,
            scalers,
            code_dim,
            base_pairs,
            stale_model,
            fresh_model,
            fresh_visible,
            inc_csr: Some(inc_csr),
            code_cache,
            x,
            pending: Vec::new(),
            tick_index: 0,
            ticks: Vec::new(),
            confusion: None,
            window_ingest: IngestStats::default(),
            stream_collect: CollectStats::default(),
            ledger: BudgetLedger::default(),
            sync_secs: 0.0,
        }
    }

    /// Push one report through collect → enrich → merge. Timed against
    /// the latency budget; may fire an automatic tick when the cadence
    /// is configured.
    pub fn push(&mut self, report: &RawReport) -> PushOutcome {
        let t = Instant::now();
        let ingested_node = {
            let _span = trail_obs::span("stream.push");
            let (events, cstats) =
                collect(std::slice::from_ref(report), &self.sys.tkg.registry);
            for stats in [&mut self.stream_collect, &mut self.sys.collect_stats] {
                stats.kept += cstats.kept;
                stats.unresolved += cstats.unresolved;
                stats.conflicting += cstats.conflicting;
                stats.rejected_indicators += cstats.rejected_indicators;
            }
            match events.into_iter().next() {
                Some(event) => {
                    let asof = self.cfg.asof.asof_for(report.created_day);
                    self.sys.asof_day = self.sys.asof_day.max(asof);
                    let stats = {
                        let enricher = Enricher::new(&self.sys.client, asof);
                        enricher.ingest(&mut self.sys.tkg, &event)
                    };
                    self.window_ingest.absorb(&stats);
                    self.sys.ingest_stats.absorb(&stats);
                    let info =
                        self.sys.tkg.event_by_report(&event.report.id).expect("just ingested");
                    let pair = (info.node, info.apt);
                    self.pending.push(pair);
                    Some(pair.0)
                }
                None => None,
            }
        };

        let us = t.elapsed().as_micros() as u64;
        trail_obs::observe("stream.event_us", trail_obs::bounds::STREAM_EVENT_US, us);
        trail_obs::counter_add("stream.events.issued", 1);
        self.ledger.issued += 1;
        let within_budget = us <= self.cfg.budget_us;
        if within_budget {
            trail_obs::counter_add("stream.events.within_budget", 1);
            self.ledger.within_budget += 1;
        } else {
            trail_obs::counter_add("stream.events.exceeded", 1);
            self.ledger.exceeded += 1;
        }
        match ingested_node {
            Some(_) => self.ledger.attributed += 1,
            None => {
                trail_obs::counter_add("stream.events.dropped", 1);
                self.ledger.dropped += 1;
            }
        }

        if let Some(cadence) = self.cfg.tick_every {
            if self.pending.len() >= cadence.max(1) {
                self.tick();
            }
        }

        match ingested_node {
            Some(node) => PushOutcome::Ingested { node, within_budget },
            None => PushOutcome::Dropped { within_budget },
        }
    }

    /// Push a micro-batch. The batch is first healed into canonical
    /// `(created_day, id)` order — the one order all partitions share —
    /// so within-batch arrival reordering cannot change the graph.
    pub fn push_batch(&mut self, reports: &[RawReport]) -> Vec<PushOutcome> {
        let mut sorted: Vec<&RawReport> = reports.iter().collect();
        sorted.sort_by(|a, b| {
            (a.created_day, a.id.as_str()).cmp(&(b.created_day, b.id.as_str()))
        });
        sorted.into_iter().map(|r| self.push(r)).collect()
    }

    /// Bring the incremental state up to date with the grown TKG:
    /// delta-merge the frozen CSR, refresh dirty code-cache rows, grow
    /// the reusable input matrix and resync recomputed rows. Idempotent
    /// and cheap when nothing grew.
    fn sync(&mut self) {
        let t = Instant::now();
        let csr = self.inc_csr.take().expect("present between calls");
        let grew = csr.node_count() != self.sys.tkg.graph.node_count()
            || csr.half_edge_count() / 2 != self.sys.tkg.graph.edge_count();
        let csr = if grew { csr.merge_appended(&self.sys.tkg.graph) } else { csr };

        let recomputed = self.code_cache.refresh(
            &self.sys.tkg,
            &self.encoders,
            &self.scalers,
            self.cfg.study.ae.batch_size,
        );
        let x = &mut self.x;
        let cache = &self.code_cache;
        let tkg = &self.sys.tkg;
        let code_dim = self.code_dim;
        let old_rows = x.rows();
        let n = tkg.graph.node_count();
        if n > old_rows {
            let mut grown = Matrix::zeros(n, x.cols());
            for i in 0..old_rows {
                grown.row_mut(i).copy_from_slice(x.row(i));
            }
            *x = grown;
        }
        for i in old_rows..n {
            let kind_col = code_dim + tkg.graph.node(NodeId::from(i)).kind.index();
            let row = x.row_mut(i);
            row[..code_dim].copy_from_slice(cache.codes().row(i));
            row[kind_col] = 1.0;
        }
        // With frozen scalers a recomputed row only ever means a
        // brand-new node, but resync pre-existing rows too so a future
        // cache policy change cannot silently desynchronise the matrix.
        for i in recomputed {
            if i < old_rows {
                x.row_mut(i)[..code_dim].copy_from_slice(cache.codes().row(i));
            }
        }
        self.inc_csr = Some(csr);
        self.sync_secs += t.elapsed().as_secs_f64();
    }

    /// Fire a tick: sync the incremental state, evaluate both models on
    /// the events accumulated since the last tick, run the read-only
    /// label-propagation check, make the events' labels visible and
    /// fine-tune the fresh model on them.
    ///
    /// Returns `None` (consuming a tick index, exactly like an empty
    /// study month) when no events are pending — no RNG is drawn, so
    /// empty ticks cannot desynchronise the stream from the batch path.
    pub fn tick(&mut self) -> Option<TickReport> {
        let month = self.tick_index;
        self.tick_index += 1;
        if self.pending.is_empty() {
            return None;
        }
        let t = Instant::now();
        let _span = trail_obs::span("stream.tick");
        self.sync();

        let tick_events = std::mem::take(&mut self.pending);
        let truth: Vec<u16> = tick_events.iter().map(|&(_, c)| c).collect();
        let targets: Vec<NodeId> = tick_events.iter().map(|&(n, _)| n).collect();
        let csr = self.inc_csr.take().expect("sync just seeded it");
        let label_base = self.code_dim + 5;

        // Fresh model first: the label block already equals
        // `fresh_visible` (same order as the incremental study; both
        // predictions are rng-free).
        let fresh_preds = predict_events(&mut self.fresh_model, &csr, &self.x, &targets);
        let fresh_hard: Vec<u16> = fresh_preds.iter().map(|&(c, _)| c).collect();

        // Stale view: hide post-base labels, predict, restore.
        for &(node, label) in &self.fresh_visible[self.base_pairs.len()..] {
            self.x[(node.index(), label_base + label as usize)] = 0.0;
        }
        let stale_preds = predict_events(&mut self.stale_model, &csr, &self.x, &targets);
        let stale_hard: Vec<u16> = stale_preds.iter().map(|&(c, _)| c).collect();
        for &(node, label) in &self.fresh_visible[self.base_pairs.len()..] {
            self.x[(node.index(), label_base + label as usize)] = 1.0;
        }

        // Label-propagation check: read-only, deterministic, never
        // mutates runtime state — a second opinion per tick.
        let lp = LabelPropagation::new(&csr, self.sys.tkg.n_classes());
        let mut seeds = vec![None; csr.node_count()];
        for &(n, c) in &self.fresh_visible {
            seeds[n.index()] = Some(c);
        }
        let lp_preds = lp.predict(&seeds, 4, &targets);
        let lp_agree = lp_preds
            .iter()
            .zip(&fresh_hard)
            .filter(|(lp, &f)| **lp == Some(f))
            .count();
        trail_obs::counter_add("stream.lp_agree", lp_agree as u64);

        let k = self.sys.tkg.n_classes();
        let result = MonthResult {
            month,
            n_events: truth.len(),
            stale_acc: accuracy(&truth, &stale_hard),
            stale_bacc: balanced_accuracy(&truth, &stale_hard, k),
            fresh_acc: accuracy(&truth, &fresh_hard),
            fresh_bacc: balanced_accuracy(&truth, &fresh_hard, k),
        };
        if self.confusion.is_none() {
            self.confusion = Some(ConfusionMatrix::from_predictions(&truth, &stale_hard, k));
        }

        // The tick's labels become visible; fine-tune the fresh model.
        self.fresh_visible.extend(tick_events.iter().copied());
        for &(node, label) in &tick_events {
            self.x[(node.index(), label_base + label as usize)] = 1.0;
        }
        let masking =
            trail_gnn::LabelMasking { offset: label_base, visible_fraction: 0.5 };
        trail_gnn::train::fine_tune_masked(
            &mut self.rng,
            &mut self.fresh_model,
            &csr,
            &mut self.x,
            &tick_events,
            &self.cfg.study.fine_tune,
            masking,
        );
        self.inc_csr = Some(csr);

        let report = TickReport { result, lp_agree };
        self.ticks.push(report.clone());
        trail_obs::counter_add("stream.ticks", 1);
        trail_obs::observe(
            "stream.tick_us",
            trail_obs::bounds::STREAM_TICK_US,
            t.elapsed().as_micros() as u64,
        );
        Some(report)
    }

    /// Fire a final tick over any pending remainder. Call when the
    /// stream drains; both the streaming and the batch run must end
    /// with this for their model states to be comparable.
    pub fn finish(&mut self) -> Option<TickReport> {
        if self.pending.is_empty() {
            return None;
        }
        self.tick()
    }

    /// Content fingerprint of the current TKG (see [`tkg_fingerprint`]).
    pub fn tkg_fingerprint(&self) -> u64 {
        tkg_fingerprint(&self.sys.tkg)
    }

    /// Fingerprint of the fresh (fine-tuned) model's weights.
    pub fn model_fingerprint(&self) -> u64 {
        model_fingerprint(&self.fresh_model)
    }

    /// Freeze the live fine-tuned state into the plain-data artefact
    /// `trail-serve` packages into a bundle (the re-freeze half of
    /// bundle hot-swap; see [`crate::freeze::refreeze`]).
    ///
    /// Catches the incremental state up first (delta CSR merge +
    /// dirty-row re-encode), then clones the current codes and the
    /// fresh model's weights. Draws no RNG and fires no tick, so
    /// freezing never perturbs the stream/batch equivalence contract —
    /// `&mut` only because [`Self::sync`] folds pending graph growth
    /// into the caches.
    pub fn freeze_fresh(&mut self) -> crate::freeze::FrozenModel {
        let _span = trail_obs::span("stream.refreeze");
        self.sync();
        let sage_cfg = SageConfig {
            input_dim: self.x.cols(),
            hidden: self.cfg.study.gnn.hidden,
            layers: self.cfg.study.gnn_layers,
            n_classes: self.sys.tkg.n_classes(),
            l2_normalize: self.cfg.study.gnn.l2_normalize,
        };
        let layers = self
            .fresh_model
            .weights()
            .iter()
            .map(|(r, n, b)| ((*r).clone(), (*n).clone(), (*b).clone()))
            .collect();
        crate::freeze::FrozenModel {
            codes: self.code_cache.codes().clone(),
            code_dim: self.code_dim,
            sage_cfg,
            layers,
        }
    }

    /// The budget ledger so far.
    pub fn ledger(&self) -> BudgetLedger {
        self.ledger
    }

    /// Total wall clock spent keeping the incremental state current
    /// (delta merges, dirty-row re-encodes, input-matrix growth) — the
    /// work that replaces full input rebuilds. Measurement only.
    pub fn sync_seconds(&self) -> f64 {
        self.sync_secs
    }

    /// Collector verdicts over the streamed reports.
    pub fn collect_stats(&self) -> &CollectStats {
        &self.stream_collect
    }

    /// Aggregate enrichment taxonomy over the streamed events (the
    /// stream's analog of the study's window ingest).
    pub fn ingest_stats(&self) -> &IngestStats {
        &self.window_ingest
    }

    /// Ticks fired so far (indices consumed, including empty ones).
    pub fn ticks_fired(&self) -> u32 {
        self.tick_index
    }

    /// Per-tick reports so far.
    pub fn tick_reports(&self) -> &[TickReport] {
        &self.ticks
    }

    /// Events ingested but not yet covered by a tick.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Borrow the underlying system (graph, client, stats).
    pub fn system(&self) -> &TrailSystem {
        &self.sys
    }

    /// The frozen CSR as of the last sync — callers wanting the
    /// current graph should [`Self::tick`] or compare fingerprints
    /// after a tick, when the CSR is guaranteed caught up.
    pub fn frozen_csr(&self) -> &Csr {
        self.inc_csr.as_ref().expect("present between calls")
    }

    /// Convert a finished (monthly-ticked) stream into the batch
    /// study's output shape for bitwise comparison with
    /// [`crate::longitudinal::run_monthly_study`].
    pub fn into_study_output(self) -> StudyOutput {
        StudyOutput {
            months: self.ticks.iter().map(|t| t.result.clone()).collect(),
            first_month_confusion: self.confusion.unwrap_or_else(|| {
                ConfusionMatrix::from_predictions(&[], &[], self.sys.tkg.n_classes())
            }),
            class_names: self.sys.tkg.registry.names().to_vec(),
            ingest: self.window_ingest,
        }
    }
}

/// Content fingerprint of a TKG: node count, edge count and the sorted
/// degree sequence folded through fnv1a — the same identity the golden
/// fixture tests pin, packaged for stream-vs-batch comparison.
pub fn tkg_fingerprint(tkg: &Tkg) -> u64 {
    let mut degrees: Vec<usize> =
        tkg.graph.iter_nodes().map(|(id, _)| tkg.graph.degree(id)).collect();
    degrees.sort_unstable();
    let mut b = Vec::with_capacity(16 + degrees.len() * 8);
    b.extend_from_slice(&(tkg.graph.node_count() as u64).to_le_bytes());
    b.extend_from_slice(&(tkg.graph.edge_count() as u64).to_le_bytes());
    for d in degrees {
        b.extend_from_slice(&(d as u64).to_le_bytes());
    }
    fnv1a_bytes(&b)
}

/// Bitwise fingerprint of a GNN's weights (shapes + f32 bit patterns).
pub fn model_fingerprint(model: &SageModel) -> u64 {
    let mut b = Vec::new();
    for (w_root, w_nbr, bias) in model.weights() {
        for m in [w_root, w_nbr, bias] {
            b.extend_from_slice(&(m.rows() as u64).to_le_bytes());
            b.extend_from_slice(&(m.cols() as u64).to_le_bytes());
            for &v in m.as_slice() {
                b.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    fnv1a_bytes(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;
    use trail_osint::{OsintClient, World, WorldConfig, DAYS_PER_MONTH};

    use crate::attribute::GnnEvalConfig;
    use trail_ml::nn::autoencoder::AutoencoderConfig;

    fn tiny_client() -> OsintClient {
        OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(123))))
    }

    fn tiny_stream_cfg(cutoff: u32) -> StreamConfig {
        StreamConfig {
            study: StudyConfig {
                months: 2,
                gnn_layers: 2,
                gnn: GnnEvalConfig {
                    hidden: 12,
                    train: trail_gnn::TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
                    val_fraction: 0.0,
                    l2_normalize: true,
                    label_visible_fraction: 0.5,
                    sampled_neighbor_cap: None,
                },
                ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
                fine_tune: trail_gnn::FineTune { lr: 0.01, epochs: 3 },
            },
            asof: AsofPolicy::WindowEnd { origin: cutoff, stride: DAYS_PER_MONTH },
            tick_every: None,
            budget_us: u64::MAX,
        }
    }

    fn runtime() -> (StreamRuntime, u32, u32) {
        let client = tiny_client();
        let cutoff = client.world().config.cutoff_day;
        let horizon = client.world().config.horizon_day();
        let sys = TrailSystem::build(client, cutoff);
        let cfg = tiny_stream_cfg(cutoff);
        (StreamRuntime::new(StdRng::seed_from_u64(9), sys, cfg), cutoff, horizon)
    }

    #[test]
    fn asof_policy_window_end_rounds_up() {
        let p = AsofPolicy::WindowEnd { origin: 600, stride: 30 };
        assert_eq!(p.asof_for(600), 630);
        assert_eq!(p.asof_for(629), 630);
        assert_eq!(p.asof_for(630), 660);
        assert_eq!(p.asof_for(5), 600, "pre-origin events analysed as of origin");
        assert_eq!(AsofPolicy::Fixed(700).asof_for(612), 700);
    }

    #[test]
    fn push_grows_the_graph_and_ledger_reconciles() {
        let (mut rt, cutoff, horizon) = runtime();
        let nodes_before = rt.system().tkg.graph.node_count();
        let reports = rt.system().client.stream_reports(cutoff, horizon);
        assert!(!reports.is_empty());
        for r in &reports {
            rt.push(r);
        }
        assert!(rt.system().tkg.graph.node_count() > nodes_before);
        let ledger = rt.ledger();
        assert_eq!(ledger.issued, reports.len() as u64);
        assert!(ledger.reconciles(), "ledger does not reconcile: {ledger:?}");
        assert_eq!(ledger.attributed as usize, rt.pending_events());
    }

    #[test]
    fn zero_budget_counts_every_event_as_exceeded_but_drops_none() {
        let (rt, cutoff, horizon) = runtime();
        let sys_graph_nodes = |rt: &StreamRuntime| rt.system().tkg.graph.node_count();
        let mut rt = rt;
        rt.cfg.budget_us = 0;
        let before = sys_graph_nodes(&rt);
        let reports = rt.system().client.stream_reports(cutoff, horizon);
        for r in &reports {
            rt.push(r);
        }
        let ledger = rt.ledger();
        assert_eq!(ledger.exceeded, ledger.issued, "0us budget must flag every event");
        assert_eq!(ledger.within_budget, 0);
        assert!(ledger.reconciles());
        // Enforcement is surfacing, not shedding: the graph still grew.
        assert!(sys_graph_nodes(&rt) > before);
    }

    #[test]
    fn empty_tick_consumes_an_index_without_rng_or_report() {
        let (mut rt, _, _) = runtime();
        assert_eq!(rt.ticks_fired(), 0);
        assert!(rt.tick().is_none());
        assert_eq!(rt.ticks_fired(), 1);
        assert!(rt.tick_reports().is_empty());
        let fp = rt.model_fingerprint();
        assert!(rt.tick().is_none());
        assert_eq!(fp, rt.model_fingerprint(), "empty tick must not touch the model");
    }

    #[test]
    fn automatic_cadence_fires_ticks() {
        let (mut rt, cutoff, horizon) = runtime();
        rt.cfg.tick_every = Some(3);
        let reports = rt.system().client.stream_reports(cutoff, horizon);
        for r in &reports {
            rt.push(r);
        }
        rt.finish();
        assert!(rt.ticks_fired() > 0);
        assert!(rt.pending_events() == 0);
        let total: usize = rt.tick_reports().iter().map(|t| t.result.n_events).sum();
        assert_eq!(total as u64, rt.ledger().attributed);
        for t in rt.tick_reports() {
            assert!(t.result.n_events <= 3, "cadence-3 tick covered {} events", t.result.n_events);
            assert!(t.lp_agree <= t.result.n_events);
        }
    }

    #[test]
    fn fingerprints_are_order_sensitive_inputs_fold_content() {
        let (rt, _, _) = runtime();
        // Same world, same build: fingerprint is reproducible.
        let (rt2, _, _) = runtime();
        assert_eq!(rt.tkg_fingerprint(), rt2.tkg_fingerprint());
        assert_eq!(rt.model_fingerprint(), rt2.model_fingerprint());
    }
}
