//! Reference kernels: the exact loops the blocked kernels in
//! [`crate::kernels`] replaced, kept bit-for-bit.
//!
//! They serve three roles:
//!
//! * ground truth for the kernel-equivalence property tests (the
//!   blocked kernels must match these bitwise on finite inputs);
//! * the "old" side of the `kernels` microbench, so speedups are
//!   measured against the real previous implementation rather than a
//!   strawman;
//! * the engine behind [`crate::Matrix::matmul_sparse_into`], the one
//!   place the `av == 0.0` skip is still wanted (see that method for
//!   the finite-inputs contract the skip imposes).

/// `C += A @ B`, ikj order, with the legacy `av == 0.0` skip: a zero
/// in A skips its whole B-row term. On finite inputs this is bitwise
/// identical to the branch-free kernel (adding the skipped `±0.0`
/// products cannot change an accumulator that starts at `+0.0`); on
/// NaN/Inf inputs the skip masks propagation, which is why the dense
/// path no longer uses it.
pub fn matmul_rows_skip(a: &[f32], a_cols: usize, b: &[f32], b_cols: usize, c: &mut [f32]) {
    for (a_row, c_row) in a.chunks_exact(a_cols).zip(c.chunks_exact_mut(b_cols)) {
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[k * b_cols..(k + 1) * b_cols];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `out += Aᵀ @ B`, k-outermost with the legacy zero skip. `A` is
/// `a_rows × a_cols`, `B` is `a_rows × b_cols`, `out` is
/// `a_cols × b_cols`.
pub fn t_matmul_rows_skip(
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    out: &mut [f32],
) {
    for k in 0..a_rows {
        let a_row = &a[k * a_cols..(k + 1) * a_cols];
        let b_row = &b[k * b_cols..(k + 1) * b_cols];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * b_cols..(i + 1) * b_cols];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `C = A @ Bᵀ` via one serial dot product per output element — the
/// latency-bound loop `matmul_t_into` used to run. `A` is
/// `a_rows × a_cols`, `B` is `b_rows × a_cols`, `C` is
/// `a_rows × b_rows`.
pub fn matmul_t_rows_dot(a: &[f32], a_cols: usize, b: &[f32], b_rows: usize, c: &mut [f32]) {
    for (a_row, c_row) in a.chunks_exact(a_cols).zip(c.chunks_exact_mut(b_rows)) {
        for (j, o) in c_row.iter_mut().enumerate() {
            *o = crate::vector::dot(a_row, &b[j * a_cols..(j + 1) * a_cols]);
        }
    }
}
