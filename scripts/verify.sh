#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
# Run from the repository root.
#
#   scripts/verify.sh            tier-1 gate
#   scripts/verify.sh --chaos    tier-1 gate + deterministic chaos tier
#   scripts/verify.sh --perf     tier-1 gate + perf tier
#
# The chaos tier replays the seeded fault drills of tests/chaos_test.rs
# (fixed seeds 1, 4 and 6: survivable feed with mid-study kills, fully
# dead feed, snapshot corruption) and smoke-checks that `repro --resume`
# rejects a corrupted checkpoint cleanly instead of loading it. It also
# runs the PR 9 durability drills: tests/wal_recovery_test.rs kills the
# durable stream at arbitrary WAL byte offsets (mid-append,
# mid-rotation, sealed-segment corruption) and demands bitwise-exact
# prefix recovery, and tests/hot_swap_test.rs re-freezes a live stream
# into a serving bundle and hot-swaps it twice under concurrent load
# with exactly-reconciling counters.
#
# The perf tier holds the memory-and-recompute guarantees: the
# counting-allocator proof that steady-state GNN epochs never touch the
# heap, the byte-for-byte incremental==full study equivalence, and a
# wall-clock gate that the cached window-preparation path (`repro fig8
# --incremental`) is at least 2x faster than the full per-window
# rebuild at --scale 0.25, plus the kernel microbench gate: the blocked
# f32 matmul must hold a >=1.5x geomean speedup (and the i8 quantized
# path >=2x) over the pre-blocking reference kernels on the GNN shapes
# swept by `kernels` (see BENCH_kernels.json).
#
# The perf tier also replays the serving benchmark (`repro serve-bench
# --quick`): rankings must be bitwise identical across concurrency
# levels, the request counters must reconcile exactly, and the measured
# tail latency / throughput are gated against the committed
# BENCH_serve.json baseline with wide (10x) slack — the gate catches
# order-of-magnitude regressions, not machine-to-machine noise.
#
# The perf tier's streaming gate (`repro stream-bench --quick`) holds
# the streaming subsystem's cost claim: the amortized per-event cost of
# keeping the TKG and GNN inputs current must stay at most 1/10 of a
# full input rebuild per event (the naive alternative), the
# event-at-a-time and micro-batch runs must land on bitwise-identical
# fingerprints, the budget ledger must reconcile, and the absolute
# amortized cost is gated against the committed BENCH_stream.json
# baseline with the same 10x slack as the serve gate. The same run's
# `[wal-summary]` line gates the write-ahead log: the report schedule
# written through the TWL1 log must scan back equal
# (recovered_equal==1) and a torn tail must truncate to exactly the
# durable prefix (torn_tail_ok==1).
#
# The perf tier's scale gate (`repro scale-bench --quick`) holds the
# paper-scale ingest contract: every shard-parallel build must be
# bitwise-identical to the sequential reference (the bench exits
# non-zero otherwise), the compact u32 CSR must agree with the
# pointer-width layout while staying >=40% smaller per node, and the
# measured bytes/node is compared against the committed
# BENCH_scale.json baseline. The 8-thread speedup (>=2x) is gated only
# on machines reporting >=8 cores.
set -euo pipefail
cd "$(dirname "$0")/.."

run_chaos=0
run_perf=0
for arg in "$@"; do
  case "$arg" in
    --chaos) run_chaos=1 ;;
    --perf) run_perf=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== tests (ignored tier: overhead budget + large-scale reconciliation) =="
cargo test -q --workspace -- --include-ignored

echo "== streaming == batch differential suite =="
cargo test -q --test stream_equivalence_test

echo "== quickstart smoke =="
cargo run --release --example quickstart >/dev/null

if cargo clippy --version >/dev/null 2>&1; then
  echo "== clippy =="
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== clippy == (component unavailable on this toolchain; skipped)"
fi

if cargo fmt --version >/dev/null 2>&1; then
  echo "== rustfmt =="
  cargo fmt --all -- --check
else
  echo "== rustfmt == (component unavailable on this toolchain; skipped)"
fi

if [ "$run_chaos" -eq 1 ]; then
  echo "== chaos tier: seeded fault drills (seeds 1, 4, 6) =="
  cargo test -q --test chaos_test

  echo "== chaos tier: WAL kill/corruption drills (kill-at-any-byte recovery) =="
  cargo test -q --test wal_recovery_test

  echo "== chaos tier: live re-freeze + hot swap under concurrent load =="
  cargo test -q --test hot_swap_test

  echo "== chaos tier: corrupted-snapshot resume smoke =="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT
  printf 'TSC1 this is not a valid checkpoint payload' > "$smoke_dir/study.ckpt"
  set +e
  smoke_out="$(cargo run --release -p trail-bench --bin repro -- fig8 --quick --scale 0.05 \
    --resume "$smoke_dir" 2>&1)"
  smoke_status=$?
  set -e
  if [ "$smoke_status" -eq 0 ]; then
    echo "FAIL: repro --resume accepted a corrupted checkpoint" >&2
    exit 1
  fi
  if printf '%s' "$smoke_out" | grep -q 'panicked'; then
    echo "FAIL: corrupted checkpoint caused a panic instead of a typed error" >&2
    printf '%s\n' "$smoke_out" >&2
    exit 1
  fi
  echo "corrupted checkpoint rejected cleanly (exit $smoke_status)"
fi

if [ "$run_perf" -eq 1 ]; then
  echo "== perf tier: zero-allocation steady-state epochs =="
  cargo test -q -p trail-gnn --test alloc_free_epoch

  echo "== perf tier: incremental study == full rebuild, byte for byte =="
  cargo test -q --test incremental_study_test

  echo "== perf tier: cached window prep must be >=2x faster (--scale 0.25) =="
  cargo build --release -p trail-bench --bin repro
  repro_bin="$PWD/target/release/repro"
  perf_dir="$(mktemp -d)"
  # May follow the chaos tier's trap; clean up both temp dirs.
  trap 'rm -rf "${smoke_dir:-}" "$perf_dir"' EXIT
  mkdir -p "$perf_dir/full" "$perf_dir/incremental"
  (cd "$perf_dir/full" && "$repro_bin" fig8 --quick --scale 0.25 --seed 77 > out.txt)
  (cd "$perf_dir/incremental" && "$repro_bin" fig8 --quick --scale 0.25 --seed 77 --incremental > out.txt)
  # Quick mode prints one machine-readable line per window:
  #   [stage] fig7_fig8_window_prep seconds=<secs>
  sum_prep() {
    awk '/^\[stage\] fig7_fig8_window_prep /{split($3, kv, "="); n++; s+=kv[2]}
         END{if (n == 0) {print "no fig7_fig8_window_prep stages in " FILENAME > "/dev/stderr"; exit 1}
             printf "%.6f", s}' "$1"
  }
  full_prep="$(sum_prep "$perf_dir/full/out.txt")"
  inc_prep="$(sum_prep "$perf_dir/incremental/out.txt")"
  echo "window prep seconds: full=$full_prep incremental=$inc_prep"
  if ! awk -v f="$full_prep" -v i="$inc_prep" 'BEGIN{exit !(i > 0 && f >= 2 * i)}'; then
    echo "FAIL: cached window prep is not >=2x faster than the full rebuild" >&2
    exit 1
  fi

  echo "== perf tier: blocked/quantized kernel speedups (single thread) =="
  # The kernels bench prints one summary line of geometric-mean
  # speedups over the pre-blocking reference kernels:
  #   [kernel-summary] matmul_speedup=.. ... quant_speedup=..
  # Gates match the bench's own --check: f32 matmul >= 1.5x, i8 >= 2x.
  cargo build --release -p trail-bench --bin kernels
  kernel_out="$("$PWD/target/release/kernels" --out "$perf_dir/BENCH_kernels.json")"
  printf '%s\n' "$kernel_out" | grep '^\[kernel'
  if ! printf '%s\n' "$kernel_out" | awk '
    /^\[kernel-summary\] /{
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      found = 1
    }
    END{
      if (!found) { print "no [kernel-summary] line" > "/dev/stderr"; exit 1 }
      ok = 1
      if (v["matmul_speedup"] + 0 < 1.5) {
        printf "FAIL: matmul geomean speedup %s < 1.5\n", v["matmul_speedup"] > "/dev/stderr"; ok = 0
      }
      if (v["quant_speedup"] + 0 < 2.0) {
        printf "FAIL: quant geomean speedup %s < 2.0\n", v["quant_speedup"] > "/dev/stderr"; ok = 0
      }
      exit !ok
    }'; then
    echo "FAIL: kernel speedup gate (see BENCH_kernels.json for the full sweep)" >&2
    exit 1
  fi

  echo "== perf tier: serving determinism + latency/throughput floor =="
  # serve-bench exits non-zero on its own invariants (cross-level
  # determinism, counter reconciliation, breaker drill); the awk gate
  # below additionally compares against the committed baseline.
  (cd "$perf_dir" && "$repro_bin" serve-bench --quick > serve_out.txt)
  grep '^\[serve' "$perf_dir/serve_out.txt"
  base_p99="$(sed -n 's/.*"max_p99_us": \([0-9]*\),*/\1/p' BENCH_serve.json | head -1)"
  base_qps="$(sed -n 's/.*"min_qps": \([0-9.]*\),*/\1/p' BENCH_serve.json | head -1)"
  if [ -z "$base_p99" ] || [ -z "$base_qps" ]; then
    echo "FAIL: committed BENCH_serve.json lacks max_p99_us/min_qps baselines" >&2
    exit 1
  fi
  if ! awk -v bp="$base_p99" -v bq="$base_qps" '
    /^\[serve-summary\] /{
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      found = 1
    }
    END{
      if (!found) { print "no [serve-summary] line" > "/dev/stderr"; exit 1 }
      ok = 1
      if (v["levels"] + 0 < 2) {
        printf "FAIL: only %s concurrency level(s) measured\n", v["levels"] > "/dev/stderr"; ok = 0
      }
      if (v["deterministic"] + 0 != 1) {
        print "FAIL: rankings differ across concurrency levels" > "/dev/stderr"; ok = 0
      }
      if (v["reconciled"] + 0 != 1) {
        print "FAIL: serve counters did not reconcile" > "/dev/stderr"; ok = 0
      }
      if (v["max_p99_us"] + 0 > 10 * bp) {
        printf "FAIL: p99 %sus > 10x baseline %sus\n", v["max_p99_us"], bp > "/dev/stderr"; ok = 0
      }
      if (v["min_qps"] + 0 < bq / 10) {
        printf "FAIL: throughput %s qps < baseline %s / 10\n", v["min_qps"], bq > "/dev/stderr"; ok = 0
      }
      exit !ok
    }' "$perf_dir/serve_out.txt"; then
    echo "FAIL: serving gate (see BENCH_serve.json for the committed baseline)" >&2
    exit 1
  fi

  echo "== perf tier: streaming amortized cost + stream==batch equivalence =="
  # stream-bench exits non-zero on its own invariants (bitwise
  # equivalence between the event-at-a-time and micro-batch runs,
  # ledger reconciliation); the awk gate additionally holds the
  # amortized-cost claim and compares against the committed baseline.
  (cd "$perf_dir" && "$repro_bin" stream-bench --quick > stream_out.txt)
  grep '^\[stream' "$perf_dir/stream_out.txt"
  base_amortized="$(sed -n 's/.*"amortized_us": \([0-9.]*\),*/\1/p' BENCH_stream.json | head -1)"
  if [ -z "$base_amortized" ]; then
    echo "FAIL: committed BENCH_stream.json lacks an amortized_us baseline" >&2
    exit 1
  fi
  if ! awk -v ba="$base_amortized" '
    /^\[stream-summary\] /{
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      found = 1
    }
    END{
      if (!found) { print "no [stream-summary] line" > "/dev/stderr"; exit 1 }
      ok = 1
      if (v["equal"] + 0 != 1) {
        print "FAIL: streaming and micro-batch runs diverged" > "/dev/stderr"; ok = 0
      }
      if (v["reconciled"] + 0 != 1) {
        print "FAIL: latency-budget ledger did not reconcile" > "/dev/stderr"; ok = 0
      }
      if (v["ticks"] + 0 < 1) {
        print "FAIL: no fine-tune ticks fired" > "/dev/stderr"; ok = 0
      }
      if (v["ratio"] + 0 < 10) {
        printf "FAIL: amortized per-event cost is only %sx below a full rebuild (need >=10x)\n", \
          v["ratio"] > "/dev/stderr"; ok = 0
      }
      if (v["amortized_us"] + 0 > 10 * ba) {
        printf "FAIL: amortized %sus/event > 10x baseline %sus\n", \
          v["amortized_us"], ba > "/dev/stderr"; ok = 0
      }
      exit !ok
    }' "$perf_dir/stream_out.txt"; then
    echo "FAIL: streaming gate (see BENCH_stream.json for the committed baseline)" >&2
    exit 1
  fi

  echo "== perf tier: sharded ingest determinism + compact storage =="
  # scale-bench exits non-zero on its own invariants (every sharded
  # build bitwise-equal to the sequential reference, u32 CSR agreeing
  # with the pointer-width layout). The awk gate additionally holds the
  # compact-storage claim against the committed BENCH_scale.json
  # baseline, and gates the 8-thread speedup only on machines with the
  # cores to show it — on narrower boxes the sharded path's parallel
  # win cannot materialize, so only the equality invariants apply.
  (cd "$perf_dir" && "$repro_bin" scale-bench --quick > scale_out.txt)
  grep '^\[scale' "$perf_dir/scale_out.txt"
  base_bpn="$(sed -n 's/.*"bytes_per_node_compact": \([0-9.]*\),*/\1/p' BENCH_scale.json | head -1)"
  if [ -z "$base_bpn" ]; then
    echo "FAIL: committed BENCH_scale.json lacks a bytes_per_node_compact baseline" >&2
    exit 1
  fi
  if ! awk -v bb="$base_bpn" '
    /^\[scale-summary\] /{
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      found = 1
    }
    END{
      if (!found) { print "no [scale-summary] line" > "/dev/stderr"; exit 1 }
      ok = 1
      if (v["shard_equal"] + 0 != 1) {
        print "FAIL: a sharded build diverged from the sequential reference" > "/dev/stderr"; ok = 0
      }
      if (v["structural_ok"] + 0 != 1) {
        print "FAIL: compact u32 CSR disagrees with the pointer-width layout" > "/dev/stderr"; ok = 0
      }
      if (v["events"] + 0 < 1) {
        print "FAIL: scale-bench ingested no events" > "/dev/stderr"; ok = 0
      }
      if (v["compact_ratio"] + 0 > 0.6) {
        printf "FAIL: compact adjacency is %sx the wide layout (need <=0.6, i.e. >=40%% smaller)\n", \
          v["compact_ratio"] > "/dev/stderr"; ok = 0
      }
      if (v["bpn_compact"] + 0 > 1.5 * bb) {
        printf "FAIL: %s bytes/node compact > 1.5x committed baseline %s\n", \
          v["bpn_compact"], bb > "/dev/stderr"; ok = 0
      }
      if (v["cores"] + 0 >= 8 && v["speedup8"] + 0 < 2.0) {
        printf "FAIL: 8-thread sharded ingest speedup %sx < 2x on a %s-core machine\n", \
          v["speedup8"], v["cores"] > "/dev/stderr"; ok = 0
      }
      exit !ok
    }' "$perf_dir/scale_out.txt"; then
    echo "FAIL: scale gate (see BENCH_scale.json for the committed baseline)" >&2
    exit 1
  fi

  echo "== perf tier: WAL append cost + recovery replay equality =="
  grep '^\[wal' "$perf_dir/stream_out.txt"
  if ! awk '
    /^\[wal-summary\] /{
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      found = 1
    }
    END{
      if (!found) { print "no [wal-summary] line" > "/dev/stderr"; exit 1 }
      ok = 1
      if (v["recovered_equal"] + 0 != 1) {
        print "FAIL: WAL recovery did not replay the schedule bitwise" > "/dev/stderr"; ok = 0
      }
      if (v["torn_tail_ok"] + 0 != 1) {
        print "FAIL: torn WAL tail did not truncate to the durable prefix" > "/dev/stderr"; ok = 0
      }
      exit !ok
    }' "$perf_dir/stream_out.txt"; then
    echo "FAIL: WAL durability gate" >&2
    exit 1
  fi
fi

echo "tier-1 gate: OK"
