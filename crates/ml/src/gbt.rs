//! Gradient-boosted trees with the multiclass soft-probability
//! objective — the "XGB" of the paper's Tables III/IV.
//!
//! Faithful to the XGBoost formulation (Chen & Guestrin 2016): one
//! second-order regression tree per class per round, split gain
//! `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`, Newton leaf
//! weights `−G/(H+λ)`, shrinkage, row and column subsampling — and,
//! like XGBoost's `hist` mode, quantile-binned split finding: features
//! are quantised to ≤32 bins once per fit, so a node split costs
//! O(rows × features) instead of O(rows log rows × features). The
//! per-round class trees are independent given the margins and train
//! in parallel.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use trail_linalg::Matrix;

use crate::Classifier;

/// Maximum histogram bins per feature.
const MAX_BINS: usize = 32;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbtConfig {
    /// Boosting rounds (trees per class).
    pub n_rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (eta).
    pub learning_rate: f32,
    /// L2 regularisation on leaf weights (lambda).
    pub lambda: f32,
    /// Minimum gain to split (gamma).
    pub gamma: f32,
    /// Minimum hessian sum per child (min_child_weight).
    pub min_child_weight: f32,
    /// Row subsample fraction per round.
    pub subsample: f32,
    /// Column subsample fraction per tree.
    pub colsample: f32,
}

impl Default for GbtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 40,
            max_depth: 6,
            learning_rate: 0.3,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.9,
            colsample: 0.8,
        }
    }
}

/// Quantile-binned view of a feature matrix.
struct BinnedMatrix {
    /// Bin index per (row, feature), row-major.
    bins: Vec<u8>,
    n_features: usize,
    /// Per feature: ascending candidate thresholds; bin `b` holds values
    /// in `(edges[b-1], edges[b]]`-ish (upper bound search).
    edges: Vec<Vec<f32>>,
}

impl BinnedMatrix {
    fn quantize(x: &Matrix) -> Self {
        let n = x.rows();
        let f = x.cols();
        let sample_cap = 4096.min(n);
        let stride = (n / sample_cap).max(1);
        let mut edges = Vec::with_capacity(f);
        let mut col_sample: Vec<f32> = Vec::with_capacity(sample_cap + 1);
        for c in 0..f {
            col_sample.clear();
            let mut r = 0;
            while r < n {
                col_sample.push(x[(r, c)]);
                r += stride;
            }
            col_sample.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            col_sample.dedup();
            let cuts: Vec<f32> = if col_sample.len() <= MAX_BINS {
                // Midpoints between consecutive distinct values.
                col_sample.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
            } else {
                let k = MAX_BINS - 1;
                (1..=k)
                    .map(|i| {
                        let lo = col_sample[(i * (col_sample.len() - 1)) / (k + 1)];
                        let hi = col_sample[((i * (col_sample.len() - 1)) / (k + 1) + 1)
                            .min(col_sample.len() - 1)];
                        0.5 * (lo + hi)
                    })
                    .collect::<Vec<f32>>()
            };
            let mut cuts = cuts;
            cuts.dedup();
            edges.push(cuts);
        }
        let mut bins = vec![0u8; n * f];
        for r in 0..n {
            let row = x.row(r);
            let dst = &mut bins[r * f..(r + 1) * f];
            for c in 0..f {
                dst[c] = bin_of(&edges[c], row[c]);
            }
        }
        Self { bins, n_features: f, edges }
    }

    #[inline]
    fn bin(&self, row: usize, feature: usize) -> usize {
        self.bins[row * self.n_features + feature] as usize
    }
}

/// Upper-bound bin search: number of edges `< v` ... values equal to an
/// edge land in the lower bin (split predicate is `<= threshold`).
#[inline]
fn bin_of(edges: &[f32], v: f32) -> u8 {
    let mut lo = 0usize;
    let mut hi = edges.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if v <= edges[mid] {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as u8
}

/// A node of a second-order regression tree. Internal nodes also store
/// the Newton value their sample set would take as a leaf — this is
/// what lets prediction paths be decomposed into per-feature margin
/// contributions (the Saabas/SHAP-style view of Fig. 9).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegNode {
    Leaf { weight: f32 },
    Split { feature: u32, threshold: f32, left: u32, right: u32, value: f32 },
}

impl RegNode {
    fn value(&self) -> f32 {
        match self {
            RegNode::Leaf { weight } => *weight,
            RegNode::Split { value, .. } => *value,
        }
    }
}

/// One regression tree over (gradient, hessian) targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegTree {
    nodes: Vec<RegNode>,
}

struct GrowCtx<'a> {
    binned: &'a BinnedMatrix,
    grad: &'a [f32],
    hess: &'a [f32],
    features: &'a [u32],
    cfg: &'a GbtConfig,
}

impl RegTree {
    /// Margin contribution for one row of raw features.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                RegNode::Leaf { weight } => return *weight,
                RegNode::Split { feature, threshold, left, right, .. } => {
                    at = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    fn fit(ctx: &GrowCtx<'_>, indices: &mut [usize]) -> Self {
        let mut tree = Self { nodes: Vec::new() };
        tree.grow(ctx, indices, 0);
        tree
    }

    fn grow(&mut self, ctx: &GrowCtx<'_>, indices: &mut [usize], depth: usize) -> u32 {
        let g: f32 = indices.iter().map(|&i| ctx.grad[i]).sum();
        let h: f32 = indices.iter().map(|&i| ctx.hess[i]).sum();
        let node_id = self.nodes.len() as u32;
        let leaf_weight = -ctx.cfg.learning_rate * g / (h + ctx.cfg.lambda);
        if depth >= ctx.cfg.max_depth || indices.len() < 2 {
            self.nodes.push(RegNode::Leaf { weight: leaf_weight });
            return node_id;
        }
        let Some((feature, threshold)) = best_split_hist(ctx, indices, g, h) else {
            self.nodes.push(RegNode::Leaf { weight: leaf_weight });
            return node_id;
        };
        let bin_cut = bin_of(&ctx.binned.edges[feature as usize], threshold) as usize;
        // Partition by bin: values with bin <= bin_cut go left (matches
        // the `<= threshold` predicate since threshold is an edge).
        let mut lo = 0usize;
        let mut hi = indices.len();
        while lo < hi {
            if ctx.binned.bin(indices[lo], feature as usize) <= bin_cut {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        let mid = lo;
        if mid == 0 || mid == indices.len() {
            self.nodes.push(RegNode::Leaf { weight: leaf_weight });
            return node_id;
        }
        self.nodes.push(RegNode::Leaf { weight: leaf_weight }); // placeholder
        let (l, r) = indices.split_at_mut(mid);
        let left = self.grow(ctx, l, depth + 1);
        let right = self.grow(ctx, r, depth + 1);
        self.nodes[node_id as usize] =
            RegNode::Split { feature, threshold, left, right, value: leaf_weight };
        node_id
    }

    /// Decompose this tree's margin for `row` into `(bias, per-feature
    /// deltas)`: walking the path, the change in node value across each
    /// split is attributed to that split's feature.
    pub fn path_contributions(&self, row: &[f32], out: &mut [f32]) -> f32 {
        let bias = self.nodes[0].value();
        let mut at = 0usize;
        let mut current = bias;
        loop {
            match &self.nodes[at] {
                RegNode::Leaf { .. } => return bias,
                RegNode::Split { feature, threshold, left, right, .. } => {
                    let next = if row[*feature as usize] <= *threshold { *left } else { *right };
                    let next_value = self.nodes[next as usize].value();
                    out[*feature as usize] += next_value - current;
                    current = next_value;
                    at = next as usize;
                }
            }
        }
    }
}

/// Histogram split search. All candidate feature histograms are built
/// in a single row-major pass over the node's rows (cache-friendly:
/// the histograms for a few hundred candidates fit in L2), then each
/// is scanned left-to-right.
fn best_split_hist(
    ctx: &GrowCtx<'_>,
    indices: &[usize],
    g_total: f32,
    h_total: f32,
) -> Option<(u32, f32)> {
    let cfg = ctx.cfg;
    let parent_score = g_total * g_total / (h_total + cfg.lambda);
    let k = ctx.features.len();
    // Interleaved (g, h) histograms: feature-major, bin-minor.
    let mut hists = vec![0.0f32; k * MAX_BINS * 2];
    let n_features = ctx.binned.n_features;
    for &i in indices {
        let g = ctx.grad[i];
        let h = ctx.hess[i];
        let row_bins = &ctx.binned.bins[i * n_features..(i + 1) * n_features];
        for (j, &f) in ctx.features.iter().enumerate() {
            let b = row_bins[f as usize] as usize;
            let slot = (j * MAX_BINS + b) * 2;
            hists[slot] += g;
            hists[slot + 1] += h;
        }
    }
    let mut best: Option<(u32, f32, f32)> = None;
    for (j, &f) in ctx.features.iter().enumerate() {
        let edges = &ctx.binned.edges[f as usize];
        if edges.is_empty() {
            continue; // constant feature
        }
        let hist = &hists[j * MAX_BINS * 2..(j + 1) * MAX_BINS * 2];
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        // A split after bin b uses threshold edges[b].
        for b in 0..edges.len() {
            gl += hist[b * 2];
            hl += hist[b * 2 + 1];
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                - cfg.gamma;
            if gain > 1e-7 && best.map_or(true, |(_, _, bg)| gain > bg) {
                best = Some((f, edges[b], gain));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

/// A fitted multiclass gradient-boosted ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    /// `rounds x n_classes` trees, flattened round-major.
    trees: Vec<RegTree>,
    n_classes: usize,
    base_score: Vec<f32>,
}

impl GradientBoostedTrees {
    /// Fit with the multiclass softprob objective. Class trees within a
    /// round train in parallel (deterministically — all randomness is
    /// drawn before the parallel section).
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        x: &Matrix,
        y: &[u16],
        n_classes: usize,
        cfg: &GbtConfig,
    ) -> Self {
        let _span = trail_obs::span("ml.gbt_fit");
        assert_eq!(x.rows(), y.len());
        let n = x.rows();
        let k = n_classes;
        let binned = BinnedMatrix::quantize(x);
        // Base score: log prior per class.
        let mut prior = vec![1e-6f32; k];
        for &l in y {
            prior[l as usize] += 1.0;
        }
        let total: f32 = prior.iter().sum();
        let base_score: Vec<f32> = prior.iter().map(|p| (p / total).ln()).collect();

        let mut margins = Matrix::zeros(n, k);
        for r in 0..n {
            margins.row_mut(r).copy_from_slice(&base_score);
        }
        let mut trees: Vec<RegTree> = Vec::with_capacity(cfg.n_rounds * k);
        let all_features: Vec<u32> = (0..x.cols() as u32).collect();
        let n_cols = ((x.cols() as f32 * cfg.colsample).ceil() as usize).clamp(1, x.cols());
        let n_rows_sub = ((n as f32 * cfg.subsample).ceil() as usize).clamp(2.min(n), n);

        let mut proba = vec![0.0f32; k];
        let mut grad = vec![vec![0.0f32; n]; k];
        let mut hess = vec![vec![0.0f32; n]; k];
        for _round in 0..cfg.n_rounds {
            for r in 0..n {
                proba.copy_from_slice(margins.row(r));
                trail_linalg::vector::softmax_inplace(&mut proba);
                for c in 0..k {
                    let p = proba[c];
                    let target = if y[r] as usize == c { 1.0 } else { 0.0 };
                    grad[c][r] = p - target;
                    hess[c][r] = (p * (1.0 - p)).max(1e-6);
                }
            }
            // Shared row subsample for the round; per-class column draws
            // happen up front so parallel training stays deterministic.
            let mut rows: Vec<usize> = (0..n).collect();
            rows.partial_shuffle(rng, n_rows_sub);
            rows.truncate(n_rows_sub);
            let col_draws: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let mut cols = all_features.clone();
                    let mut col_rng = StdRng::seed_from_u64(rng.gen());
                    cols.partial_shuffle(&mut col_rng, n_cols);
                    cols.truncate(n_cols);
                    cols
                })
                .collect();

            // Per-class trees are independent given the margins; they
            // fan out across the shared worker pool with column draws
            // fixed up front, so boosting is identical for every
            // thread count.
            let round_trees: Vec<RegTree> = trail_linalg::pool::parallel_map(k, |c| {
                let ctx = GrowCtx {
                    binned: &binned,
                    grad: &grad[c],
                    hess: &hess[c],
                    features: &col_draws[c],
                    cfg,
                };
                let mut rows_c = rows.clone();
                RegTree::fit(&ctx, &mut rows_c)
            });
            for (c, tree) in round_trees.into_iter().enumerate() {
                for r in 0..n {
                    margins[(r, c)] += tree.predict_row(x.row(r));
                }
                trees.push(tree);
            }
        }
        Self { trees, n_classes: k, base_score }
    }

    /// Number of boosting rounds stored.
    pub fn n_rounds(&self) -> usize {
        self.trees.len() / self.n_classes.max(1)
    }

    /// Raw (pre-softmax) margins for one row.
    pub fn margins_row(&self, row: &[f32]) -> Vec<f32> {
        let mut m = self.base_score.clone();
        for (i, tree) in self.trees.iter().enumerate() {
            m[i % self.n_classes] += tree.predict_row(row);
        }
        m
    }

    /// Per-feature additive contributions to class `class`'s margin for
    /// one row (Saabas decomposition over every tree of that class).
    /// Returns `(bias, contributions)`; `bias + sum(contributions)`
    /// equals the class margin up to float noise.
    pub fn margin_contributions(&self, row: &[f32], class: usize) -> (f32, Vec<f32>) {
        assert!(class < self.n_classes);
        let mut contrib = vec![0.0f32; row.len()];
        let mut bias = self.base_score[class];
        for (i, tree) in self.trees.iter().enumerate() {
            if i % self.n_classes == class {
                bias += tree.path_contributions(row, &mut contrib);
            }
        }
        (bias, contrib)
    }
}

impl Classifier for GradientBoostedTrees {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for (r, row) in x.rows_iter().enumerate() {
            let mut m = self.margins_row(row);
            trail_linalg::vector::softmax_inplace(&mut m);
            out.row_mut(r).copy_from_slice(&m);
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn blobs(n_per: usize) -> (Matrix, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(7);
        let centers = [(0.0f32, 0.0f32), (4.0, 4.0), (0.0, 4.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(cx + rng.gen_range(-1.0..1.0));
                rows.push(cy + rng.gen_range(-1.0..1.0));
                y.push(c as u16);
            }
        }
        (Matrix::from_vec(3 * n_per, 2, rows).unwrap(), y)
    }

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(30);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GbtConfig { n_rounds: 15, ..Default::default() };
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 3, &cfg);
        let acc = crate::metrics::accuracy(&y, &gbt.predict(&x));
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn probabilities_normalised() {
        let (x, y) = blobs(10);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GbtConfig { n_rounds: 5, ..Default::default() };
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 3, &cfg);
        for row in gbt.predict_proba(&x).rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_rounds_predicts_prior() {
        let (x, y) = blobs(5);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = GbtConfig { n_rounds: 0, ..Default::default() };
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 3, &cfg);
        let proba = gbt.predict_proba(&x);
        for row in proba.rows_iter() {
            for &p in row {
                assert!((p - 1.0 / 3.0).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (x, y) = blobs(20);
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let few = GradientBoostedTrees::fit(&mut r1, &x, &y, 3, &GbtConfig { n_rounds: 2, ..Default::default() });
        let many = GradientBoostedTrees::fit(&mut r2, &x, &y, 3, &GbtConfig { n_rounds: 20, ..Default::default() });
        let acc_few = crate::metrics::accuracy(&y, &few.predict(&x));
        let acc_many = crate::metrics::accuracy(&y, &many.predict(&x));
        assert!(acc_many >= acc_few);
    }

    #[test]
    fn imbalanced_base_score_matches_prior() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.1, 0.2, 5.0]).unwrap();
        let y = vec![0, 0, 0, 1];
        let mut rng = StdRng::seed_from_u64(5);
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 2, &GbtConfig { n_rounds: 0, ..Default::default() });
        let p = gbt.predict_proba(&x);
        assert!((p[(0, 0)] - 0.75).abs() < 1e-3);
    }

    #[test]
    fn deterministic_despite_parallel_class_training() {
        let (x, y) = blobs(20);
        let cfg = GbtConfig { n_rounds: 6, subsample: 0.8, colsample: 0.9, ..Default::default() };
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = GradientBoostedTrees::fit(&mut r1, &x, &y, 3, &cfg);
        let b = GradientBoostedTrees::fit(&mut r2, &x, &y, 3, &cfg);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn binning_separates_binary_features() {
        // One-hot style data must still be splittable after binning.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let on = (i % 2) as f32;
            rows.extend_from_slice(&[on, 1.0 - on]);
            y.push((i % 2) as u16);
        }
        let x = Matrix::from_vec(60, 2, rows).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 2, &GbtConfig { n_rounds: 3, ..Default::default() });
        assert_eq!(crate::metrics::accuracy(&y, &gbt.predict(&x)), 1.0);
    }

    #[test]
    fn wide_sparse_data_is_fast_enough() {
        // 400 x 600 one-hot-ish matrix: trains in well under a second.
        let mut rng = StdRng::seed_from_u64(12);
        let n = 400;
        let f = 600;
        let mut x = Matrix::zeros(n, f);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let class = (r % 4) as u16;
            // informative slot per class plus noise slots
            x[(r, class as usize * 7)] = 1.0;
            for _ in 0..10 {
                let c = rng.gen_range(0..f);
                x[(r, c)] = 1.0;
            }
            y.push(class);
        }
        let t = std::time::Instant::now();
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 4, &GbtConfig { n_rounds: 5, colsample: 0.5, ..Default::default() });
        assert!(t.elapsed().as_secs() < 20, "too slow: {:?}", t.elapsed());
        let acc = crate::metrics::accuracy(&y, &gbt.predict(&x));
        assert!(acc > 0.9, "{acc}");
    }
}
