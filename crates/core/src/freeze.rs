//! Train-and-freeze: produce the immutable artefacts `trail-serve`
//! packages into a `ServeBundle`.
//!
//! Serving attributes *fresh* incidents against the full historical
//! TKG, so — unlike the Table IV folds — the model here trains on
//! every ingested event (the Fig. 10 protocol: all labels are
//! history, nothing is held out). The output is deliberately plain
//! data: the per-node codes, the shared SAGE architecture and its
//! trained parameters. `trail-serve` owns the frame format; this
//! module owns the training recipe, so the two evolve independently.

use rand::Rng;
use trail_gnn::{train_sage_masked, LabelMasking, SageConfig, SageModel};
use trail_graph::NodeId;
use trail_linalg::Matrix;
use trail_ml::nn::autoencoder::AutoencoderConfig;

use crate::attribute::GnnEvalConfig;
use crate::embed;
use crate::tkg::Tkg;

/// Everything the serving layer needs to score queries, frozen after
/// training. Parameters are extracted as plain matrices so the bundle
/// format never depends on `SageModel`'s internals.
pub struct FrozenModel {
    /// Per-node autoencoder codes (zero rows for unfeatured nodes).
    pub codes: Matrix,
    /// Code width.
    pub code_dim: usize,
    /// The SAGE architecture the weights belong to.
    pub sage_cfg: SageConfig,
    /// Trained parameters, per layer `(W_root, W_nbr, b)`.
    pub layers: Vec<(Matrix, Matrix, Matrix)>,
}

impl FrozenModel {
    /// Reconstruct a runnable model from the frozen parameters.
    ///
    /// The skeleton is seeded deterministically and then overwritten
    /// layer by layer, so every call yields a bitwise-identical model —
    /// the property the serving runtime's per-worker replicas rely on.
    pub fn instantiate(&self) -> SageModel {
        instantiate(self.sage_cfg, &self.layers)
    }
}

/// Build a [`SageModel`] carrying exactly `layers` as parameters.
pub fn instantiate(cfg: SageConfig, layers: &[(Matrix, Matrix, Matrix)]) -> SageModel {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = SageModel::new(&mut rng, cfg);
    for (l, (w_root, w_nbr, b)) in layers.iter().enumerate() {
        model.set_layer_weights(l, w_root.clone(), w_nbr.clone(), b.clone());
    }
    model
}

/// Freeze a live [`StreamRuntime`](crate::stream::StreamRuntime)'s
/// fine-tuned state for serving — the producer half of bundle
/// hot-swap. The stream keeps running afterwards; the serving side
/// packages the result with `ServeBundle::refreeze` and installs it
/// into a running `ServeRuntime` with zero downtime.
///
/// `&mut` only because the runtime folds pending graph growth into
/// its caches first; no RNG is drawn and no tick fires.
pub fn refreeze(rt: &mut crate::stream::StreamRuntime) -> FrozenModel {
    rt.freeze_fresh()
}

/// Train the full stack (autoencoders, then GraphSAGE on **all**
/// events) and freeze it for serving.
pub fn train_frozen<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    ae_cfg: &AutoencoderConfig,
    gnn_cfg: &GnnEvalConfig,
    layers: usize,
) -> FrozenModel {
    let _span = trail_obs::span("freeze.train");
    let (emb, _) = embed::train_autoencoders(rng, tkg, ae_cfg);
    train_frozen_from(rng, tkg, emb, gnn_cfg, layers)
}

/// [`train_frozen`] reusing already-trained embeddings.
pub fn train_frozen_from<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    emb: embed::NodeEmbeddings,
    gnn_cfg: &GnnEvalConfig,
    layers: usize,
) -> FrozenModel {
    let csr = tkg.csr();
    let pairs: Vec<(NodeId, u16)> = tkg.events.iter().map(|e| (e.node, e.apt)).collect();
    let mut x = embed::assemble_gnn_input(tkg, &emb, &pairs);
    let sage_cfg = SageConfig {
        input_dim: x.cols(),
        hidden: gnn_cfg.hidden,
        layers,
        n_classes: tkg.n_classes(),
        l2_normalize: gnn_cfg.l2_normalize,
    };
    let masking = LabelMasking {
        offset: emb.code_dim + 5,
        visible_fraction: gnn_cfg.label_visible_fraction,
    };
    let (model, _) = match gnn_cfg.sampled_neighbor_cap {
        Some(cap) => trail_gnn::train_sage_masked_sampled(
            rng, &csr, &x, sage_cfg, &pairs, &[], &gnn_cfg.train, masking, cap,
        ),
        None => train_sage_masked(rng, &csr, &mut x, sage_cfg, &pairs, &[], &gnn_cfg.train, masking),
    };
    let layers = model.weights().iter().map(|(r, n, b)| ((*r).clone(), (*n).clone(), (*b).clone())).collect();
    FrozenModel { codes: emb.codes, code_dim: emb.code_dim, sage_cfg, layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn instantiate_is_deterministic_and_carries_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = SageConfig::new(4, 8, 2, 3);
        let trained = SageModel::new(&mut rng, cfg);
        let layers: Vec<(Matrix, Matrix, Matrix)> = trained
            .weights()
            .iter()
            .map(|(r, n, b)| ((*r).clone(), (*n).clone(), (*b).clone()))
            .collect();
        let a = instantiate(cfg, &layers);
        let b = instantiate(cfg, &layers);
        for ((ra, na, ba), (rb, nb, bb)) in a.weights().iter().zip(b.weights().iter()) {
            assert_eq!(ra, rb);
            assert_eq!(na, nb);
            assert_eq!(ba, bb);
        }
        for ((ra, na, ba), (rt, nt, bt)) in a.weights().iter().zip(trained.weights().iter()) {
            assert_eq!(ra, rt);
            assert_eq!(na, nt);
            assert_eq!(ba, bt);
        }
    }
}
