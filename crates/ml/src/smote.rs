//! SMOTE: Synthetic Minority Over-sampling TEchnique (Chawla et al.,
//! JAIR 2002), the resampling step of the paper's preprocessing.
//!
//! For each minority sample, synthetic points are interpolated between
//! the sample and one of its k nearest same-class neighbours.

use rand::Rng;
use trail_linalg::vector::sq_dist;
use trail_linalg::Matrix;

use crate::dataset::Dataset;

/// SMOTE configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmoteConfig {
    /// Number of same-class nearest neighbours to interpolate with.
    pub k: usize,
    /// Cap on the oversampling ratio: a class is never grown beyond
    /// `max_ratio * its original size` (guards runaway blowup when one
    /// class is tiny).
    pub max_ratio: f32,
    /// Candidate pool size for the neighbour search. Exact k-NN is
    /// O(n² d) per class, which dominates on wide feature spaces; each
    /// sample's neighbours are found among at most this many randomly
    /// chosen same-class candidates instead (0 = exact).
    pub neighbor_candidates: usize,
}

impl Default for SmoteConfig {
    fn default() -> Self {
        Self { k: 5, max_ratio: 6.0, neighbor_candidates: 150 }
    }
}

/// Oversample every minority class towards the majority count.
/// Returns a new dataset with the original rows first.
pub fn smote<R: Rng + ?Sized>(rng: &mut R, data: &Dataset, cfg: SmoteConfig) -> Dataset {
    let counts = data.class_counts();
    let target = counts.iter().copied().max().unwrap_or(0);
    let mut new_rows: Vec<Vec<f32>> = Vec::new();
    let mut new_labels: Vec<u16> = Vec::new();

    for class in 0..data.n_classes {
        let members: Vec<usize> =
            (0..data.len()).filter(|&i| data.y[i] as usize == class).collect();
        let n = members.len();
        if n < 2 || n >= target {
            continue;
        }
        let capped_target = target.min((n as f32 * cfg.max_ratio) as usize);
        let needed = capped_target.saturating_sub(n);
        if needed == 0 {
            continue;
        }
        // Precompute k nearest same-class neighbours per member, over a
        // capped random candidate pool when the class is large.
        let k = cfg.k.min(n - 1).max(1);
        let neighbours: Vec<Vec<usize>> = members
            .iter()
            .map(|&i| {
                let candidates: Vec<usize> =
                    if cfg.neighbor_candidates > 0 && n - 1 > cfg.neighbor_candidates {
                        (0..cfg.neighbor_candidates)
                            .map(|_| loop {
                                let j = members[rng.gen_range(0..n)];
                                if j != i {
                                    break j;
                                }
                            })
                            .collect()
                    } else {
                        members.iter().copied().filter(|&j| j != i).collect()
                    };
                let mut dists: Vec<(usize, f32)> = candidates
                    .iter()
                    .map(|&j| (j, sq_dist(data.x.row(i), data.x.row(j))))
                    .collect();
                dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                dists.truncate(k);
                dists.into_iter().map(|(j, _)| j).collect()
            })
            .collect();
        for s in 0..needed {
            let m = s % n;
            let base = members[m];
            let nbrs = &neighbours[m];
            let other = nbrs[rng.gen_range(0..nbrs.len())];
            let t: f32 = rng.gen();
            let row: Vec<f32> = data
                .x
                .row(base)
                .iter()
                .zip(data.x.row(other))
                .map(|(&a, &b)| a + t * (b - a))
                .collect();
            new_rows.push(row);
            new_labels.push(class as u16);
        }
    }

    // Assemble: original + synthetic.
    let total = data.len() + new_rows.len();
    let cols = data.x.cols();
    let mut buf = Vec::with_capacity(total * cols);
    buf.extend_from_slice(data.x.as_slice());
    for r in &new_rows {
        buf.extend_from_slice(r);
    }
    let mut y = data.y.clone();
    y.extend(new_labels);
    Dataset::new(Matrix::from_vec(total, cols, buf).expect("consistent dims"), y, data.n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn imbalanced() -> Dataset {
        // 8 samples of class 0 around (0,0); 3 of class 1 around (10,10).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            rows.extend_from_slice(&[i as f32 * 0.1, i as f32 * 0.1]);
            y.push(0);
        }
        for i in 0..3 {
            rows.extend_from_slice(&[10.0 + i as f32 * 0.1, 10.0 + i as f32 * 0.1]);
            y.push(1);
        }
        Dataset::new(Matrix::from_vec(11, 2, rows).unwrap(), y, 2)
    }

    #[test]
    fn balances_class_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = smote(&mut rng, &imbalanced(), SmoteConfig::default());
        assert_eq!(out.class_counts(), vec![8, 8]);
    }

    #[test]
    fn synthetic_points_interpolate_within_class_hull() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = imbalanced();
        let out = smote(&mut rng, &data, SmoteConfig::default());
        // Synthetic class-1 points stay in the class-1 region.
        for i in data.len()..out.len() {
            assert_eq!(out.y[i], 1);
            let r = out.x.row(i);
            assert!(r[0] >= 10.0 - 1e-5 && r[0] <= 10.2 + 1e-5, "{:?}", r);
        }
    }

    #[test]
    fn max_ratio_caps_blowup() {
        let mut rng = StdRng::seed_from_u64(3);
        // Class 1 has 2 members vs 100 of class 0; ratio cap 3x.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            rows.extend_from_slice(&[i as f32, 0.0]);
            y.push(0);
        }
        rows.extend_from_slice(&[0.0, 5.0, 0.0, 6.0]);
        y.extend_from_slice(&[1, 1]);
        let data = Dataset::new(Matrix::from_vec(102, 2, rows).unwrap(), y, 2);
        let out = smote(&mut rng, &data, SmoteConfig { k: 5, max_ratio: 3.0, ..Default::default() });
        assert_eq!(out.class_counts()[1], 6);
    }

    #[test]
    fn singleton_class_is_left_alone() {
        let data = Dataset::new(
            Matrix::from_vec(3, 1, vec![0.0, 1.0, 9.0]).unwrap(),
            vec![0, 0, 1],
            2,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let out = smote(&mut rng, &data, SmoteConfig::default());
        // Cannot interpolate a 1-member class: unchanged.
        assert_eq!(out.len(), 3);
    }
}
