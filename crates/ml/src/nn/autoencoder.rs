//! Autoencoders for IOC feature projection (paper Section VI-C, Eq. 5).
//!
//! URLs, IPs and domains have different dimensionalities (1,517 / 507 /
//! 115). The paper trains one encoder/decoder pair per type — two-layer
//! feed-forward networks with 512 hidden units and a 64-dim code — and
//! feeds the codes into GraphSAGE while keeping a reconstruction loss
//! so information survives the projection.

use rand::Rng;
use trail_linalg::Matrix;

use super::layers::{Layer, Linear, Relu};
use super::loss::mse;
use super::optim::Adam;

/// Autoencoder hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AutoencoderConfig {
    /// Hidden width of both encoder and decoder (paper: 512).
    pub hidden: usize,
    /// Code width (paper: 64).
    pub code: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        Self { hidden: 512, code: 64, lr: 1e-3, epochs: 15, batch_size: 256 }
    }
}

/// A two-layer encoder / two-layer decoder pair.
pub struct Autoencoder {
    enc1: Linear,
    enc_act: Relu,
    enc2: Linear,
    dec1: Linear,
    dec_act: Relu,
    dec2: Linear,
    code_dim: usize,
}

impl Autoencoder {
    /// Build untrained.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_in: usize, cfg: &AutoencoderConfig) -> Self {
        Self {
            enc1: Linear::new(rng, d_in, cfg.hidden),
            enc_act: Relu::default(),
            enc2: Linear::new(rng, cfg.hidden, cfg.code),
            dec1: Linear::new(rng, cfg.code, cfg.hidden),
            dec_act: Relu::default(),
            dec2: Linear::new(rng, cfg.hidden, d_in),
            code_dim: cfg.code,
        }
    }

    /// Code dimensionality.
    pub fn code_dim(&self) -> usize {
        self.code_dim
    }

    /// Encode a batch into code space (inference mode).
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let h = self.enc1.forward_eval(x);
        let h = self.enc_act.forward_eval(&h);
        self.enc2.forward_eval(&h)
    }

    /// Reconstruct a batch (inference mode).
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        let code = self.encode(x);
        let h = self.dec1.forward_eval(&code);
        let h = self.dec_act.forward_eval(&h);
        self.dec2.forward_eval(&h)
    }

    /// One training step on a batch; returns the reconstruction loss.
    pub fn train_batch(&mut self, x: &Matrix, adam: &mut Adam) -> f32 {
        // Forward with caches.
        let h1 = self.enc1.forward(x, true);
        let a1 = self.enc_act.forward(&h1, true);
        let code = self.enc2.forward(&a1, true);
        let h2 = self.dec1.forward(&code, true);
        let a2 = self.dec_act.forward(&h2, true);
        let recon = self.dec2.forward(&a2, true);
        let (loss, d_recon) = mse(&recon, x);
        // Backward.
        let g = self.dec2.backward(&d_recon);
        let g = self.dec_act.backward(&g);
        let g = self.dec1.backward(&g);
        let g = self.enc2.backward(&g);
        let g = self.enc_act.backward(&g);
        let _ = self.enc1.backward(&g);
        // Step.
        adam.tick();
        for layer in [
            &mut self.enc1,
            &mut self.enc2,
            &mut self.dec1,
            &mut self.dec2,
        ] {
            layer.visit_params(&mut |p| adam.step(p));
        }
        loss
    }

    /// Borrow the four dense layers' parameters in the fixed order
    /// `enc1, enc2, dec1, dec2` as `(W, b)` pairs — the checkpoint
    /// serialisation surface.
    pub fn layer_params(&self) -> [(&Matrix, &Matrix); 4] {
        [
            (&self.enc1.w.value, &self.enc1.b.value),
            (&self.enc2.w.value, &self.enc2.b.value),
            (&self.dec1.w.value, &self.dec1.b.value),
            (&self.dec2.w.value, &self.dec2.b.value),
        ]
    }

    /// Replace layer `l`'s parameters (order as [`Self::layer_params`],
    /// shape-checked). Optimiser moments reset — restoration happens
    /// between training stages, never mid-stage.
    pub fn set_layer_params(&mut self, l: usize, w: Matrix, b: Matrix) {
        let layer = match l {
            0 => &mut self.enc1,
            1 => &mut self.enc2,
            2 => &mut self.dec1,
            3 => &mut self.dec2,
            _ => panic!("autoencoder has 4 dense layers, asked for {l}"),
        };
        assert_eq!(w.shape(), layer.w.value.shape(), "W shape for layer {l}");
        assert_eq!(b.shape(), layer.b.value.shape(), "b shape for layer {l}");
        layer.w = super::Param::new(w);
        layer.b = super::Param::new(b);
    }

    /// Full training loop; returns per-epoch mean loss.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        x: &Matrix,
        cfg: &AutoencoderConfig,
    ) -> Vec<f32> {
        use rand::seq::SliceRandom;
        let mut adam = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let xb = x.gather_rows(chunk);
                total += self.train_batch(&xb, &mut adam);
                batches += 1;
            }
            losses.push(if batches > 0 { total / batches as f32 } else { 0.0 });
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Low-rank data: rows live on a 2-D subspace of R^8; a 4-dim code
    /// reconstructs it well.
    fn low_rank(n: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(11);
        Matrix::from_fn(n, 8, |r, c| {
            let _ = r;
            let a: f32 = ((r * 31) % 17) as f32 / 17.0 - 0.5;
            let b: f32 = ((r * 7) % 13) as f32 / 13.0 - 0.5;
            let noise = rng.gen_range(-0.01..0.01);
            a * (c as f32 + 1.0) * 0.3 + b * ((8 - c) as f32) * 0.2 + noise
        })
    }

    #[test]
    fn reconstruction_improves_with_training() {
        let x = low_rank(128);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AutoencoderConfig { hidden: 16, code: 4, lr: 1e-2, epochs: 40, batch_size: 32 };
        let mut ae = Autoencoder::new(&mut rng, 8, &cfg);
        let losses = ae.train(&mut rng, &x, &cfg);
        assert!(losses.last().unwrap() < &(losses[0] * 0.2), "{losses:?}");
    }

    #[test]
    fn code_has_requested_dim() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = AutoencoderConfig { hidden: 8, code: 3, ..Default::default() };
        let ae = Autoencoder::new(&mut rng, 10, &cfg);
        let x = Matrix::zeros(5, 10);
        assert_eq!(ae.encode(&x).shape(), (5, 3));
        assert_eq!(ae.reconstruct(&x).shape(), (5, 10));
        assert_eq!(ae.code_dim(), 3);
    }

    #[test]
    fn layer_params_roundtrip_reproduces_the_model() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = AutoencoderConfig { hidden: 8, code: 3, ..Default::default() };
        let ae = Autoencoder::new(&mut rng, 6, &cfg);
        let mut copy = Autoencoder::new(&mut rng, 6, &cfg); // different init
        for (l, (w, b)) in ae.layer_params().into_iter().enumerate() {
            copy.set_layer_params(l, w.clone(), b.clone());
        }
        let x = Matrix::from_fn(4, 6, |r, c| (r * 2 + c) as f32 * 0.1);
        assert_eq!(ae.encode(&x), copy.encode(&x));
        assert_eq!(ae.reconstruct(&x), copy.reconstruct(&x));
    }

    #[test]
    fn encode_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = AutoencoderConfig { hidden: 8, code: 3, ..Default::default() };
        let ae = Autoencoder::new(&mut rng, 6, &cfg);
        let x = Matrix::from_fn(4, 6, |r, c| (r + c) as f32);
        assert_eq!(ae.encode(&x), ae.encode(&x));
    }
}
