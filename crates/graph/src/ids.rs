//! Newtype identifiers for graph entities.

use serde::{Deserialize, Serialize};

/// Index of a node in a [`crate::GraphStore`].
///
/// `u32` keeps adjacency lists compact; the paper's full graph is
/// 2.1 M nodes, well inside range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        NodeId(v as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Label identifier for an APT class attached to an event node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u16);

impl LabelId {
    /// The label as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }
}
