//! IOC parsing, validation and feature extraction for TRAIL.
//!
//! This crate owns the network-IOC domain model the paper studies:
//!
//! * [`defang`] — refanging of `hxxp://` / `[.]`-style defensive
//!   obfuscation used in threat reports.
//! * [`ip`], [`domain`], [`url`] — from-scratch parsers and the lexical
//!   features (entropy, digit ratios, label structure) of Section IV-B.
//! * [`types`] — the [`types::Ioc`] sum type with auto-detection.
//! * [`report`] — the raw JSON incident-report format the pipeline
//!   ingests (the OTX-pulse analogue).
//! * [`analysis`] — the data model of enrichment results (what passive
//!   DNS / geo-IP / cURL probing returns).
//! * [`features`] — fixed-layout one-hot encoders producing exactly the
//!   paper's 1,517-dim URL / 507-dim IP / 115-dim domain vectors, with
//!   human-readable names for every slot (used by the Fig. 9 SHAP view).

pub mod analysis;
pub mod defang;
pub mod domain;
pub mod features;
pub mod ip;
pub mod json;
pub mod key;
pub mod report;
pub mod types;
pub mod url;
pub mod vocab;

pub use analysis::{DomainAnalysis, IpAnalysis, UrlAnalysis};
pub use key::{IocKey, IocKeyRef};
pub use types::{Ioc, IocKind};

/// Errors raised while parsing IOC text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IocError {
    /// The text is not a valid value of the expected kind.
    Invalid {
        /// What we tried to parse it as.
        kind: &'static str,
        /// The offending input (possibly truncated).
        input: String,
        /// Why it failed.
        reason: &'static str,
    },
}

impl IocError {
    pub(crate) fn invalid(kind: &'static str, input: &str, reason: &'static str) -> Self {
        let mut input = input.to_owned();
        input.truncate(120);
        IocError::Invalid { kind, input, reason }
    }
}

impl std::fmt::Display for IocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IocError::Invalid { kind, input, reason } => {
                write!(f, "invalid {kind} {input:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for IocError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IocError>;

/// Shannon entropy in bits of the byte distribution of `s`.
/// The paper's key lexical feature (Fig. 9: URL entropy is the top
/// APT28 signal).
pub fn shannon_entropy(s: &str) -> f32 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = [0u32; 256];
    for b in s.bytes() {
        counts[b as usize] += 1;
    }
    let n = s.len() as f32;
    let mut h = 0.0;
    for &c in counts.iter().filter(|&&c| c > 0) {
        let p = c as f32 / n;
        h -= p * p.log2();
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_edges() {
        assert_eq!(shannon_entropy(""), 0.0);
        assert_eq!(shannon_entropy("aaaa"), 0.0);
        assert!((shannon_entropy("ab") - 1.0).abs() < 1e-6);
        // Random-looking strings have higher entropy than words.
        assert!(shannon_entropy("q7x9zk2m") > shannon_entropy("download"));
    }
}
