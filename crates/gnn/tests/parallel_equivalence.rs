//! Equivalence of the pooled GraphSAGE kernels across thread counts.
//!
//! The sweeps partition work by output row and keep each row's
//! neighbour summation in CSR order, so `threads = 1` (the sequential
//! reference), 2 and 8 must produce **bitwise identical** matrices —
//! not merely close ones. Label propagation has the matching test next
//! to its scatter reference in `labelprop.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trail_gnn::sage;
use trail_graph::{Csr, EdgeKind, GraphStore, NodeKind};
use trail_linalg::Matrix;

/// A bipartite-ish reuse graph: events wired to random IOCs, plus a
/// hub (high-degree row) and isolates (zero-degree rows).
fn random_reuse_graph(seed: u64, n_events: usize, n_iocs: usize) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphStore::new();
    let iocs: Vec<_> =
        (0..n_iocs).map(|i| g.upsert_node(NodeKind::Ip, &format!("10.0.0.{i}"))).collect();
    let hub = g.upsert_node(NodeKind::Domain, "hub.example");
    for e in 0..n_events {
        let ev = g.upsert_node(NodeKind::Event, &format!("e{e}"));
        for _ in 0..rng.gen_range(1..6) {
            let ioc = iocs[rng.gen_range(0..iocs.len())];
            let _ = g.add_edge(ev, ioc, EdgeKind::InReport);
        }
        if rng.gen_bool(0.3) {
            let _ = g.add_edge(ev, hub, EdgeKind::InReport);
        }
    }
    g.upsert_node(NodeKind::Asn, "AS-isolated");
    Csr::from_store(&g)
}

fn features(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d, |_, _| rng.gen_range(-2.0..2.0))
}

#[test]
fn aggregate_mean_is_bitwise_identical_across_thread_counts() {
    for (graph_seed, d) in [(1u64, 1usize), (2, 7), (3, 32)] {
        let csr = random_reuse_graph(graph_seed, 60, 25);
        let h = features(csr.node_count(), d, graph_seed ^ 0xfeed);
        let reference = sage::aggregate_mean_with_threads(&csr, &h, 1);
        for threads in [2usize, 8] {
            let pooled = sage::aggregate_mean_with_threads(&csr, &h, threads);
            assert_eq!(pooled, reference, "seed={graph_seed} d={d} threads={threads}");
        }
        // The policy-driven entry point agrees with the reference too.
        assert_eq!(sage::aggregate_mean(&csr, &h), reference);
    }
}

#[test]
fn backward_scatter_is_bitwise_identical_across_thread_counts() {
    for (graph_seed, d) in [(4u64, 3usize), (5, 16)] {
        let csr = random_reuse_graph(graph_seed, 60, 25);
        let d_agg = features(csr.node_count(), d, graph_seed ^ 0xbeef);
        let reference = sage::scatter_mean_grad_with_threads(&csr, &d_agg, 1);
        for threads in [2usize, 8] {
            let pooled = sage::scatter_mean_grad_with_threads(&csr, &d_agg, threads);
            assert_eq!(pooled, reference, "seed={graph_seed} d={d} threads={threads}");
        }
    }
}

#[test]
fn backward_gather_matches_adjoint_identity() {
    // <aggregate(h), d> == <h, scatter(d)>: the gather rewrite of the
    // backward pass is still the exact transpose of the forward mean.
    let csr = random_reuse_graph(6, 40, 15);
    let h = features(csr.node_count(), 5, 77);
    let d = features(csr.node_count(), 5, 78);
    let lhs: f64 = sage::aggregate_mean_with_threads(&csr, &h, 8)
        .as_slice()
        .iter()
        .zip(d.as_slice())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    let rhs: f64 = h
        .as_slice()
        .iter()
        .zip(sage::scatter_mean_grad_with_threads(&csr, &d, 8).as_slice())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
}
