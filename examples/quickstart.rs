//! Quickstart: build a TRAIL knowledge graph from an OSINT feed and
//! attribute events with label propagation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use trail::attribute;
use trail::system::TrailSystem;
use trail_gnn::LabelPropagation;
use trail_osint::{OsintClient, World, WorldConfig};

fn main() {
    // 1. An OSINT source. In production this would wrap a live threat
    //    exchange; here it is the bundled synthetic world (see
    //    DESIGN.md for what it simulates and why).
    let mut config = WorldConfig::default().scaled(0.25);
    config.seed = 42;
    let world = Arc::new(World::generate(config));
    let client = OsintClient::new(world);

    // 2. Build the TKG: search events, validate IOCs, enrich two hops,
    //    merge everything into one graph.
    let cutoff = client.world().config.cutoff_day;
    let system = TrailSystem::build(client, cutoff);
    println!("TRAIL knowledge graph built from {} reports:", system.tkg.events.len());
    println!("{}", system.tkg.stats_table());

    // 3. Attribute: mask the label of the most recent event and let
    //    label propagation recover it from infrastructure reuse.
    let event = system.tkg.events.last().expect("events exist");
    let csr = system.tkg.csr();
    let lp = LabelPropagation::new(&csr, system.tkg.n_classes());
    let mut seeds = vec![None; system.tkg.graph.node_count()];
    for e in &system.tkg.events {
        if e.node != event.node {
            seeds[e.node.index()] = Some(e.apt);
        }
    }
    let proba = lp.predict_proba(&seeds, 4, &[event.node]);
    let mut ranked: Vec<(usize, f32)> = proba[0].iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "event {} — true attribution: {}",
        event.report_id,
        system.tkg.registry.name(event.apt)
    );
    println!("label-propagation verdict (top 3):");
    for (apt, p) in ranked.into_iter().take(3) {
        println!("  {:<10} {:.1}%", system.tkg.registry.name(apt as u16), 100.0 * p);
    }

    // 4. Cross-validated quality of the same method over all events.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let scores = attribute::eval_event_lp(&mut rng, &system.tkg, 4, 5);
    let (acc, std) = scores.acc_mean_std();
    println!("\n5-fold LP(4) event attribution accuracy: {acc:.3} ± {std:.3}");
}
