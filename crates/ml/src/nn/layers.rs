//! Differentiable layers: linear, ReLU, batch-norm, dropout — exactly
//! the blocks of the paper's MLP (Section VI-A).

use rand::Rng;
use serde::{Deserialize, Serialize};
use trail_linalg::{init, Matrix};

/// A trainable parameter with its gradient accumulator and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Gradient of the last backward pass.
    pub grad: Matrix,
    /// Adam first-moment state.
    pub m: Matrix,
    /// Adam second-moment state.
    pub v: Matrix,
}

impl Param {
    /// Wrap an initial value with zeroed gradient and optimiser state.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self { value, grad: Matrix::zeros(r, c), m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) }
    }

    /// Zero the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

/// A differentiable layer.
pub trait Layer {
    /// Forward pass. `train` toggles batch statistics and dropout.
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Inference-only forward pass: no caches, no batch statistics,
    /// dropout disabled. Usable from `&self`.
    fn forward_eval(&self, x: &Matrix) -> Matrix;

    /// Backward pass: consume `d_out`, accumulate parameter gradients,
    /// return the gradient w.r.t. the input. Must follow a `forward`
    /// with `train = true`.
    fn backward(&mut self, d_out: &Matrix) -> Matrix;

    /// Visit every trainable parameter (optimiser hook).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer: `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `in x out`.
    pub w: Param,
    /// Bias, `1 x out`.
    pub b: Param,
    cache_x: Option<Matrix>,
}

impl Linear {
    /// He-initialised linear layer (suits the ReLU stacks used here).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        Self {
            w: Param::new(init::he_uniform(rng, fan_in, fan_out)),
            b: Param::new(Matrix::zeros(1, fan_out)),
            cache_x: None,
        }
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.value.cols()
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if train {
            self.cache_x = Some(x.clone());
        }
        self.forward_eval(x)
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value).expect("linear shape");
        y.add_row_broadcast(self.b.value.as_slice()).expect("bias shape");
        y
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let dw = x.t_matmul(d_out).expect("dw shape");
        self.w.grad.add_assign(&dw).expect("dw accum");
        let db = d_out.col_sums();
        for (g, d) in self.b.grad.as_mut_slice().iter_mut().zip(db) {
            *g += d;
        }
        d_out.matmul_t(&self.w.value).expect("dx shape")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear activation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Layer for Relu {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if train {
            self.mask = x.as_slice().iter().map(|&v| v > 0.0).collect();
        }
        x.map(|v| v.max(0.0))
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        assert_eq!(d_out.as_slice().len(), self.mask.len(), "backward before forward");
        let mut dx = d_out.clone();
        for (g, &keep) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            if !keep {
                *g = 0.0;
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

// ---------------------------------------------------------------------------
// BatchNorm1d
// ---------------------------------------------------------------------------

/// Batch normalisation over the batch dimension with learnable scale
/// and shift; running statistics for inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    /// Scale (gamma), `1 x d`.
    pub gamma: Param,
    /// Shift (beta), `1 x d`.
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BnCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// New batch-norm over `d` features.
    pub fn new(d: usize) -> Self {
        Self {
            gamma: Param::new(Matrix::from_fn(1, d, |_, _| 1.0)),
            beta: Param::new(Matrix::zeros(1, d)),
            running_mean: vec![0.0; d],
            running_var: vec![1.0; d],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let d = x.cols();
        assert_eq!(d, self.running_mean.len());
        let (mean, var) = if train {
            let mean = trail_linalg::stats::col_means(x);
            let var = trail_linalg::stats::col_vars(x, &mean);
            for i in 0..d {
                self.running_mean[i] =
                    (1.0 - self.momentum) * self.running_mean[i] + self.momentum * mean[i];
                self.running_var[i] =
                    (1.0 - self.momentum) * self.running_var[i] + self.momentum * var[i];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = x.clone();
        for row in x_hat.as_mut_slice().chunks_exact_mut(d) {
            for ((v, &mu), &is) in row.iter_mut().zip(&mean).zip(&inv_std) {
                *v = (*v - mu) * is;
            }
        }
        let mut y = x_hat.clone();
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        for row in y.as_mut_slice().chunks_exact_mut(d) {
            for ((v, &g), &b) in row.iter_mut().zip(gamma).zip(beta) {
                *v = *v * g + b;
            }
        }
        if train {
            self.cache = Some(BnCache { x_hat, inv_std });
        }
        y
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let d = x.cols();
        let inv_std: Vec<f32> =
            self.running_var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        let mut y = x.clone();
        for row in y.as_mut_slice().chunks_exact_mut(d) {
            for i in 0..d {
                row[i] = (row[i] - self.running_mean[i]) * inv_std[i] * gamma[i] + beta[i];
            }
        }
        y
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward before forward");
        let n = d_out.rows() as f32;
        let d = d_out.cols();
        // d_gamma = sum(d_out * x_hat), d_beta = sum(d_out)
        let mut d_gamma = vec![0.0f32; d];
        let mut d_beta = vec![0.0f32; d];
        for (dr, xr) in d_out.rows_iter().zip(cache.x_hat.rows_iter()) {
            for i in 0..d {
                d_gamma[i] += dr[i] * xr[i];
                d_beta[i] += dr[i];
            }
        }
        for (g, v) in self.gamma.grad.as_mut_slice().iter_mut().zip(&d_gamma) {
            *g += v;
        }
        for (g, v) in self.beta.grad.as_mut_slice().iter_mut().zip(&d_beta) {
            *g += v;
        }
        // dx = gamma*inv_std/n * (n*d_out - d_beta - x_hat*d_gamma)
        let gamma = self.gamma.value.as_slice();
        let mut dx = Matrix::zeros(d_out.rows(), d);
        for r in 0..d_out.rows() {
            let dr = d_out.row(r);
            let xr = cache.x_hat.row(r);
            let out = dx.row_mut(r);
            for i in 0..d {
                out[i] = gamma[i] * cache.inv_std[i] / n
                    * (n * dr[i] - d_beta[i] - xr[i] * d_gamma[i]);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: active during training only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    rate: f32,
    mask: Vec<f32>,
    seed: u64,
    step: u64,
}

impl Dropout {
    /// Dropout with the given drop probability. `seed` keeps the layer
    /// deterministic without threading an RNG through `forward`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate));
        Self { rate, mask: Vec::new(), seed, step: 0 }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if !train || self.rate == 0.0 {
            return x.clone();
        }
        use rand::{rngs::StdRng, SeedableRng};
        self.step += 1;
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.step.wrapping_mul(0x9e3779b97f4a7c15));
        let keep = 1.0 - self.rate;
        self.mask = x
            .as_slice()
            .iter()
            .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        y
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        if self.mask.is_empty() {
            return d_out.clone();
        }
        let mut dx = d_out.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn numeric_grad(
        layer: &mut dyn Layer,
        x: &Matrix,
        d_out_fn: impl Fn(&Matrix) -> f32,
        at: (usize, usize),
    ) -> f32 {
        let eps = 1e-3;
        let mut xp = x.clone();
        xp[(at.0, at.1)] += eps;
        let mut xm = x.clone();
        xm[(at.0, at.1)] -= eps;
        let fp = d_out_fn(&layer.forward(&xp, false));
        let fm = d_out_fn(&layer.forward(&xm, false));
        (fp - fm) / (2.0 * eps)
    }

    #[test]
    fn linear_forward_and_grad_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(&mut rng, 3, 2);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]).unwrap();
        // Loss = sum of outputs; then d_out = ones.
        let y = lin.forward(&x, true);
        let d_out = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let dx = lin.backward(&d_out);
        // Analytic dx vs numeric.
        let numeric = numeric_grad(&mut lin, &x, |y| y.as_slice().iter().sum(), (0, 1));
        assert!((dx[(0, 1)] - numeric).abs() < 1e-2, "{} vs {numeric}", dx[(0, 1)]);
        // dW = Xᵀ @ ones: check one entry.
        assert!((lin.w.grad[(0, 0)] - (0.5 + 1.5)).abs() < 1e-5);
        // db = column sums of ones = batch size.
        assert!((lin.b.grad[(0, 0)] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let mut relu = Relu::default();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = relu.backward(&Matrix::from_fn(1, 4, |_, _| 1.0));
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn batchnorm_normalises_in_train_mode() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]).unwrap();
        let y = bn.forward(&x, true);
        let mean = trail_linalg::stats::col_means(&y);
        let var = trail_linalg::stats::col_vars(&y, &mean);
        assert!(mean.iter().all(|m| m.abs() < 1e-4));
        assert!(var.iter().all(|v| (v - 1.0).abs() < 1e-2));
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Matrix::from_vec(4, 1, vec![5.0, 5.0, 5.0, 5.0]).unwrap();
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        // After many identical batches, running mean ~ 5 and var ~ 0:
        // eval of the same input is ~0.
        let y = bn.forward(&x, false);
        assert!(y.as_slice().iter().all(|v| v.abs() < 0.2), "{:?}", y.as_slice());
    }

    #[test]
    fn batchnorm_backward_grad_flows() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        bn.forward(&x, true);
        let d = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let dx = bn.backward(&d);
        assert_eq!(dx.shape(), (3, 2));
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
        // Sum of dx over the batch per column is ~0 (a batchnorm identity).
        let sums = dx.col_sums();
        assert!(sums.iter().all(|s| s.abs() < 1e-4), "{sums:?}");
    }

    #[test]
    fn dropout_scales_and_is_identity_at_eval() {
        let mut dp = Dropout::new(0.5, 42);
        let x = Matrix::from_fn(10, 10, |_, _| 1.0);
        let eval = dp.forward(&x, false);
        assert_eq!(eval, x);
        let train = dp.forward(&x, true);
        // Inverted dropout: surviving entries are scaled by 2.
        let kinds: std::collections::HashSet<u32> =
            train.as_slice().iter().map(|&v| v as u32).collect();
        assert!(kinds.contains(&0) && kinds.contains(&2));
        // Expected mean stays ~1.
        let mean: f32 = train.as_slice().iter().sum::<f32>() / 100.0;
        assert!((mean - 1.0).abs() < 0.35, "{mean}");
    }
}
